(* Production runtime (lib/prod) tests.

   The failatom.plan/1 artifact is the contract between detection and
   the always-on masking runtime: these tests pin its round trip
   (emit → load → armed targets equal a fresh detection's Mask.targets),
   its refusal of stale digests and of documents missing required
   fields, the bitwise equivalence of the two rollback engines, and the
   seeded canary channel validating failure-obliviousness live over a
   1000+-call run. *)

open Failatom_core
open Failatom_apps
module Minilang = Failatom_minilang.Minilang
module Compile = Failatom_minilang.Compile
module Sched = Failatom_runtime.Sched
module Plan = Failatom_prod.Plan
module Armed = Failatom_prod.Armed
module Perturb = Failatom_prod.Perturb
module Scorecard = Failatom_prod.Scorecard
module Produce = Failatom_prod.Produce

let parse = Minilang.parse
let find_app name = Option.get (Registry.find name)

let with_engine engine f =
  let saved = !Compile.default_engine in
  Compile.default_engine := engine;
  Fun.protect ~finally:(fun () -> Compile.default_engine := saved) f

let plan_of ?(config = Config.default) ~flavor program =
  let detection = Detect.run ~config ~flavor program in
  let classification =
    Classify.classify ~exception_free:config.Config.exception_free detection
  in
  Plan.build ~config ~flavor ~program ~detection ~classification

let strings_of_set s = List.map Method_id.to_string (Method_id.Set.elements s)
let method_set = Alcotest.(slist string String.compare)

let production ?config ?perturb ?policy ~plan ~times rollback program =
  match Produce.run ?config ~rollback ?perturb ?policy ~times ~plan program with
  | Ok r -> r
  | Error msg -> Alcotest.failf "production run failed: %s" msg

(* Stripped of timings, a scorecard row is deterministic. *)
let core_rows (sc : Scorecard.t) =
  List.map
    (fun (r : Scorecard.meth_row) ->
      Format.asprintf
        "%s calls=%d hits=%d fired=%d validated=%d interfered=%d failed=%d"
        (Method_id.to_string r.Scorecard.r_id)
        r.Scorecard.r_calls r.Scorecard.r_hits r.Scorecard.r_fired
        r.Scorecard.r_validated r.Scorecard.r_interfered r.Scorecard.r_failed)
    sc.Scorecard.rows

(* A canary aggressive enough to force rollbacks on every eligible
   call; At_exit makes each one restore a really-mutated graph. *)
let hot_canary seed =
  { Produce.seed;
    rate_per_mille = 1000;
    max_fires = None;
    point = Perturb.At_exit;
    fallback_exceptions = [] }

(* ------------------------------------------------------------------ *)
(* Plan artifact                                                       *)
(* ------------------------------------------------------------------ *)

let check_plan_round_trip name flavor () =
  let program = parse (find_app name).Registry.source in
  let plan = plan_of ~flavor program in
  let json = Plan.to_json plan in
  match Plan.of_string json with
  | Error msg -> Alcotest.failf "round trip failed: %s" msg
  | Ok plan2 -> (
    Alcotest.(check string) "deterministic re-rendering" json (Plan.to_json plan2);
    (* the loaded plan arms exactly what a fresh detection would wrap *)
    let fresh = Detect.run ~config:Config.default ~flavor program in
    let cls = Classify.classify fresh in
    Alcotest.(check method_set) "targets equal fresh Mask.targets"
      (strings_of_set (Mask.targets Config.default cls))
      (strings_of_set (Plan.target_set plan2));
    match
      Plan.validate ~config:Config.default plan2
        ~program_digest:(Minilang.program_digest program)
    with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "fresh plan refused: %s" msg)

let test_stale_rejection () =
  let linked = parse (find_app "LinkedList").Registry.source in
  let other = parse (find_app "RBTree").Registry.source in
  let plan = plan_of ~flavor:Detect.Load_time_filters linked in
  (match Plan.validate plan ~program_digest:(Minilang.program_digest other) with
   | Ok () -> Alcotest.fail "plan for another program accepted"
   | Error _ -> ());
  (* the driver refuses to arm, not just the validator *)
  (match Produce.run ~plan other with
   | Ok _ -> Alcotest.fail "stale plan armed wrappers"
   | Error _ -> ());
  (* a config with a different fingerprint is stale too *)
  let cfg = { Config.default with Config.wrap_policy = Config.Wrap_all_non_atomic } in
  match
    Plan.validate ~config:cfg plan ~program_digest:(Minilang.program_digest linked)
  with
  | Ok () -> Alcotest.fail "plan under a different config accepted"
  | Error _ -> ()

let required_fields =
  [ "schema"; "program_digest"; "config_fingerprint"; "flavor"; "wrap_policy";
    "injections"; "targets"; "methods" ]

let test_strict_decoding () =
  let program = parse (find_app "LinkedList").Registry.source in
  let plan = plan_of ~flavor:Detect.Load_time_filters program in
  let fields =
    match Json.of_string (Plan.to_json plan) with
    | Json.Obj fields -> fields
    | _ -> Alcotest.fail "plan is not a JSON object"
  in
  (* a plan from a future producer that dropped a required field must
     not arm silently *)
  List.iter
    (fun name ->
      let stripped =
        Json.Obj (List.filter (fun (k, _) -> not (String.equal k name)) fields)
      in
      match Plan.of_string (Json.to_string stripped) with
      | Ok _ -> Alcotest.failf "plan without %S accepted" name
      | Error _ -> ())
    required_fields;
  (* additive extensions are ignored *)
  let extended = Json.Obj (fields @ [ ("future_extension", Json.Int 1) ]) in
  match Plan.of_string (Json.to_string extended) with
  | Error msg -> Alcotest.failf "additive extension rejected: %s" msg
  | Ok p ->
    Alcotest.(check string) "extension ignored" (Plan.to_json plan) (Plan.to_json p)

(* ------------------------------------------------------------------ *)
(* Rollback-engine equivalence                                         *)
(* ------------------------------------------------------------------ *)

(* COW rollback must be observationally indistinguishable from the
   eager checkpoint: same outputs byte for byte, same per-method call,
   hit, and canary-verdict counts — only the timings may differ. *)
let check_rollback_equivalence name flavor engine () =
  with_engine engine (fun () ->
      let program = parse (find_app name).Registry.source in
      let plan = plan_of ~flavor program in
      let run rollback =
        production ~perturb:(hot_canary 7) ~plan ~times:3 rollback program
      in
      let cp = run Armed.Rb_checkpoint in
      let cow = run Armed.Rb_cow in
      Alcotest.(check (list string)) "outputs bitwise identical"
        (List.map (fun (r : Produce.run_report) -> r.Produce.output) cp.Produce.runs)
        (List.map (fun (r : Produce.run_report) -> r.Produce.output) cow.Produce.runs);
      Alcotest.(check (list string)) "same scorecard core"
        (core_rows cp.Produce.scorecard)
        (core_rows cow.Produce.scorecard);
      Alcotest.(check bool) "rollbacks exercised" true
        (Scorecard.hits cp.Produce.scorecard > 0);
      Alcotest.(check int) "no validation failures" 0
        (Scorecard.failed cow.Produce.scorecard))

(* ------------------------------------------------------------------ *)
(* Canary channel                                                      *)
(* ------------------------------------------------------------------ *)

let test_canary_thousand_calls () =
  let program = parse (find_app "LinkedList").Registry.source in
  let plan = plan_of ~flavor:Detect.Load_time_filters program in
  let { Produce.scorecard; _ } =
    production ~perturb:(hot_canary 42) ~plan ~times:80 Armed.Rb_cow program
  in
  Alcotest.(check bool) "a 1000+-call production run" true
    (Scorecard.calls scorecard >= 1000);
  Alcotest.(check bool) "the canary fired" true (Scorecard.fired scorecard > 0);
  Alcotest.(check int) "every perturbation validated"
    (Scorecard.fired scorecard)
    (Scorecard.validated scorecard);
  Alcotest.(check int) "sequential runs never interfere" 0
    (Scorecard.interfered scorecard);
  Alcotest.(check int) "zero validation failures" 0 (Scorecard.failed scorecard)

(* Same seed, same plan: the draw sequence — and therefore the whole
   scorecard core — is reproducible; a different seed perturbs a
   different set of calls. *)
let test_canary_determinism () =
  let program = parse (find_app "Dynarray").Registry.source in
  let plan = plan_of ~flavor:Detect.Load_time_filters program in
  let spec seed = { (hot_canary seed) with Produce.rate_per_mille = 300 } in
  let run seed = production ~perturb:(spec seed) ~plan ~times:4 Armed.Rb_cow program in
  let a = run 5 and b = run 5 in
  Alcotest.(check (list string)) "same seed, same scorecard core"
    (core_rows a.Produce.scorecard) (core_rows b.Produce.scorecard);
  Alcotest.(check (list string)) "same seed, same outputs"
    (List.map (fun (r : Produce.run_report) -> r.Produce.output) a.Produce.runs)
    (List.map (fun (r : Produce.run_report) -> r.Produce.output) b.Produce.runs)

(* At_entry: the body never ran, so the rollback is trivial and the
   retry's result is the call's only execution. *)
let test_canary_at_entry () =
  let program = parse (find_app "LinkedList").Registry.source in
  let plan = plan_of ~flavor:Detect.Load_time_filters program in
  let perturb = { (hot_canary 3) with Produce.point = Perturb.At_entry } in
  let plain = production ~plan ~times:2 Armed.Rb_cow program in
  let canaried = production ~perturb ~plan ~times:2 Armed.Rb_cow program in
  Alcotest.(check (list string)) "entry perturbation is output-transparent"
    (List.map (fun (r : Produce.run_report) -> r.Produce.output) plain.Produce.runs)
    (List.map (fun (r : Produce.run_report) -> r.Produce.output) canaried.Produce.runs);
  Alcotest.(check int) "zero validation failures" 0
    (Scorecard.failed canaried.Produce.scorecard);
  Alcotest.(check bool) "the canary fired" true
    (Scorecard.fired canaried.Produce.scorecard > 0)

let test_perturb_max_caps_fires () =
  let program = parse (find_app "LinkedList").Registry.source in
  let plan = plan_of ~flavor:Detect.Load_time_filters program in
  let perturb = { (hot_canary 9) with Produce.max_fires = Some 2 } in
  let { Produce.scorecard; _ } =
    production ~perturb ~plan ~times:5 Armed.Rb_cow program
  in
  Alcotest.(check int) "fires capped" 2 (Scorecard.fired scorecard)

(* ------------------------------------------------------------------ *)
(* Scorecard artifact                                                  *)
(* ------------------------------------------------------------------ *)

let test_scorecard_round_trip () =
  let program = parse (find_app "LinkedList").Registry.source in
  let plan = plan_of ~flavor:Detect.Load_time_filters program in
  let { Produce.scorecard; _ } =
    production ~perturb:(hot_canary 1) ~plan ~times:2 Armed.Rb_checkpoint program
  in
  let json = Scorecard.to_json scorecard in
  match Scorecard.of_string json with
  | Error msg -> Alcotest.failf "scorecard round trip failed: %s" msg
  | Ok sc2 ->
    Alcotest.(check string) "deterministic re-rendering" json (Scorecard.to_json sc2);
    Alcotest.(check (list string)) "same core" (core_rows scorecard) (core_rows sc2)

let suite =
  let rt name flavor label =
    Alcotest.test_case
      (Printf.sprintf "plan round trip: %s (%s)" name label)
      `Quick
      (check_plan_round_trip name flavor)
  in
  let eq name flavor engine flabel elabel =
    Alcotest.test_case
      (Printf.sprintf "cow = checkpoint: %s (%s, %s)" name flabel elabel)
      `Quick
      (check_rollback_equivalence name flavor engine)
  in
  [ rt "LinkedList" Detect.Load_time_filters "binary";
    rt "LinkedList" Detect.Source_weaving "source";
    rt "Dynarray" Detect.Load_time_filters "binary";
    Alcotest.test_case "stale plan refused" `Quick test_stale_rejection;
    Alcotest.test_case "strict decoding" `Quick test_strict_decoding;
    eq "LinkedList" Detect.Load_time_filters Compile.Closures "binary" "closures";
    eq "LinkedList" Detect.Load_time_filters Compile.Bytecode "binary" "bytecode";
    eq "LinkedList" Detect.Source_weaving Compile.Closures "source" "closures";
    eq "Dynarray" Detect.Load_time_filters Compile.Bytecode "binary" "bytecode";
    eq "RBTree" Detect.Load_time_filters Compile.Closures "binary" "closures";
    Alcotest.test_case "seeded 1k-call canary, zero failures" `Quick
      test_canary_thousand_calls;
    Alcotest.test_case "canary determinism in the seed" `Quick
      test_canary_determinism;
    Alcotest.test_case "entry-point canary is transparent" `Quick
      test_canary_at_entry;
    Alcotest.test_case "perturb-max caps fires" `Quick test_perturb_max_caps_fires;
    Alcotest.test_case "scorecard round trip" `Quick test_scorecard_round_trip ]
