(* The staged compiler: image/instantiate split.

   Covers what the direct-interpreter tests cannot: that one image can
   be instantiated many times without sharing any mutable state, that
   the static scope resolution (slot indices) preserves MiniLang's
   function-level scoping, and that the compiled interpreter's dynamic
   behavior — step counts, call counts, allocation counts — is pinned
   to known-good values so a compilation change that silently alters
   the execution (and with it every detection digest) fails here first. *)

open Failatom_runtime
open Failatom_minilang

let parse = Minilang.parse

let run_src src =
  let vm = Compile.instantiate (Compile.image (parse src)) in
  ignore (Compile.run_main vm);
  Vm.output vm

let check_out msg expected src = Alcotest.(check string) msg expected (run_src src)

(* ------------------------------------------------------------------ *)
(* Instantiate isolation                                               *)
(* ------------------------------------------------------------------ *)

let counter_src =
  {|
class Box {
  field n;
  method init(n) { this.n = n; return this; }
  method get() { return this.n; }
  method bump() { this.n = this.n + 1; return this.n; }
}
function main() {
  var b = new Box(1);
  b.bump();
  println("n=" + b.get());
  return b.get();
}
|}

let test_two_vms_isolated () =
  let image = Compile.image (parse counter_src) in
  let vm1 = Compile.instantiate image in
  let vm2 = Compile.instantiate image in
  Vm.set_global vm1 "tag" (Value.Int 1);
  ignore (Compile.run_main vm1);
  (* vm2 has not run: no output, no allocations, no global *)
  Alcotest.(check string) "vm1 output" "n=2\n" (Vm.output vm1);
  Alcotest.(check string) "vm2 untouched output" "" (Vm.output vm2);
  Alcotest.(check int) "vm2 untouched heap" 0 (Heap.allocations vm2.Vm.heap);
  Alcotest.(check bool) "vm2 untouched globals" true
    (Option.is_none (Vm.get_global vm2 "tag"));
  ignore (Compile.run_main vm2);
  Alcotest.(check string) "vm2 output after its own run" "n=2\n" (Vm.output vm2);
  (* both ran the same program on separate heaps *)
  Alcotest.(check int) "same allocation stream"
    (Heap.allocations vm1.Vm.heap) (Heap.allocations vm2.Vm.heap)

let test_filters_per_instantiation () =
  let image = Compile.image (parse counter_src) in
  let vm1 = Compile.instantiate image in
  let vm2 = Compile.instantiate image in
  (* load-time interposition on vm1 only: force get() to return 99 *)
  let filter =
    { Vm.filt_name = "test";
      pre = (fun _ _ _ _ -> Vm.Pre_return (Value.Int 99));
      post = (fun _ _ _ _ _ -> Vm.Pass);
      unwind = Vm.no_unwind }
  in
  Vm.attach_filter (Vm.find_method vm1 "Box" "get") filter;
  ignore (Compile.run_main vm1);
  ignore (Compile.run_main vm2);
  Alcotest.(check string) "vm1 sees the filter" "n=99\n" (Vm.output vm1);
  Alcotest.(check string) "vm2 does not" "n=2\n" (Vm.output vm2)

(* ------------------------------------------------------------------ *)
(* Slot resolution                                                     *)
(* ------------------------------------------------------------------ *)

let test_shadowing () =
  (* redeclaration is function-scoped: same name, same slot *)
  check_out "redeclare overwrites" "2 2\n"
    {|
function main() {
  var x = 1;
  if (true) { var x = 2; }
  print(x);
  var x = x;
  println(" " + x);
  return 0;
}
|};
  check_out "param redeclared" "7\n"
    {|
function f(x) { var x = x + 2; return x; }
function main() { println(f(5)); return 0; }
|}

let test_for_init_scope () =
  (* the for-init variable lives in the whole function, as before *)
  check_out "for-init visible after loop" "3\n"
    {|
function main() {
  for (var i = 0; i < 3; i = i + 1) { }
  println(i);
  return 0;
}
|}

let test_catch_var_slot () =
  check_out "catch variable carries the exception object" "boom after\n"
    {|
function main() {
  try { throw new IllegalStateException("boom"); }
  catch (RuntimeException e) { print(e.message); }
  println(" after");
  return 0;
}
|}

let test_super_dispatch () =
  check_out "super resolved against the defining class" "base:sub\n"
    {|
class A {
  method init() { return this; }
  method who() { return "base"; }
}
class B extends A {
  method who() { return "sub"; }
  method tag() { return super.who() + ":" + this.who(); }
}
function main() { println(new B().tag()); return 0; }
|}

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.equal (String.sub s i m) sub || at (i + 1)) in
  at 0

let expect_runtime_error msg fragment src =
  match run_src src with
  | _ -> Alcotest.failf "%s: expected Runtime_error" msg
  | exception Compile.Runtime_error (m, _) ->
    if not (contains m fragment) then
      Alcotest.failf "%s: error %S does not mention %S" msg m fragment

let test_unbound_variable () =
  expect_runtime_error "read before declaration" "unknown variable"
    {|
function main() {
  if (false) { var x = 1; }
  println(x);
  return 0;
}
|};
  expect_runtime_error "assign before declaration" "unknown variable"
    {|
function main() {
  if (false) { var x = 1; }
  x = 3;
  return 0;
}
|}

let test_arity_error () =
  expect_runtime_error "method arity" "expects 1 argument(s), got 2"
    {|
class C { method init() { return this; } method m(a) { return a; } }
function main() { return new C().m(1, 2); }
|}

(* ------------------------------------------------------------------ *)
(* Pinned dynamic counts                                               *)
(* ------------------------------------------------------------------ *)

(* The golden program exercises inheritance, super calls, try/catch/
   finally, arrays, loops and continue.  The expected numbers are the
   direct AST interpreter's, captured before the staged compiler
   replaced it; any drift here would shift every detection digest. *)
let golden_src =
  {|
class Counter {
  field n;
  method init(n) { this.n = n; return this; }
  method bump(k) {
    var i = 0;
    while (i < k) { this.n = this.n + 1; i = i + 1; }
    return this.n;
  }
  method risky(d) {
    try { return this.n / d; }
    catch (ArithmeticException e) { return 0 - 1; }
    finally { this.n = this.n + 1; }
  }
}
class Loud extends Counter {
  method bump(k) { var r = super.bump(k * 2); println("bump " + r); return r; }
}
function helper(x) { var a = [x, x + 1, x + 2]; return a[1] * 2; }
function main() {
  var c = new Loud(5);
  c.bump(3);
  println(c.risky(2));
  println(c.risky(0));
  println(helper(10));
  for (var j = 0; j < 3; j = j + 1) { if (j == 1) { continue; } print(j); }
  println("");
  return c.n;
}
|}

let test_golden_counts () =
  let vm = Compile.instantiate (Compile.image (parse golden_src)) in
  let exit_v = Compile.run_main vm in
  Alcotest.(check string) "output" "bump 11\n5\n-1\n22\n02\n" (Vm.output vm);
  Alcotest.(check int) "exit" 13
    (match exit_v with Value.Int n -> n | _ -> -1);
  Alcotest.(check int) "steps" 220 vm.Vm.steps;
  Alcotest.(check int) "calls" 5 vm.Vm.calls;
  Alcotest.(check int) "allocations" 3 (Heap.allocations vm.Vm.heap)

let suite =
  [ Alcotest.test_case "two VMs from one image are isolated" `Quick
      test_two_vms_isolated;
    Alcotest.test_case "filters are per instantiation" `Quick
      test_filters_per_instantiation;
    Alcotest.test_case "redeclaration shadows by slot" `Quick test_shadowing;
    Alcotest.test_case "for-init scope" `Quick test_for_init_scope;
    Alcotest.test_case "catch variable slot" `Quick test_catch_var_slot;
    Alcotest.test_case "super dispatch" `Quick test_super_dispatch;
    Alcotest.test_case "unbound variable errors" `Quick test_unbound_variable;
    Alcotest.test_case "arity error message" `Quick test_arity_error;
    Alcotest.test_case "golden dynamic counts" `Quick test_golden_counts ]
