(* Masking-phase tests: the headline theorem of the paper — after
   masking, re-detection finds no failure non-atomic method — plus
   policies, do-not-wrap exclusions, checkpoint strategies, and
   semantic transparency of the corrected program. *)

open Failatom_core
open Failatom_apps

let parse = Failatom_minilang.Minilang.parse

(* Runs the full pipeline on [source], then re-runs detection on the
   corrected program and returns the classification restricted to
   original (non-mangled) method names. *)
let residual_non_atomic ?config ?flavor source =
  let config = Option.value ~default:Config.default config in
  let program = parse source in
  let outcome = Mask.correct ~config ?flavor program in
  let d2 =
    Detect.run ~config ?flavor
      ~prepare:(Mask.register_hooks config)
      outcome.Mask.corrected
  in
  let c2 = Classify.classify d2 in
  ( outcome,
    List.filter
      (fun (id : Method_id.t) -> Source_weaver.demangle id.Method_id.name = None)
      (Classify.non_atomic_methods c2) )

let check_masking_closes flavor () =
  let outcome, residual = residual_non_atomic ~flavor Synthetic.source in
  Alcotest.(check bool) "something was wrapped" true
    (not (Method_id.Set.is_empty outcome.Mask.wrapped));
  Alcotest.(check (list string)) "no residual non-atomic methods" []
    (List.map Method_id.to_string residual)

let test_wrap_pure_policy () =
  let program = parse Synthetic.source in
  let outcome = Mask.correct program in
  (* default policy wraps pure methods only: conditionals become atomic
     through their callees *)
  let wrapped = List.map Method_id.to_string (Method_id.Set.elements outcome.Mask.wrapped) in
  Alcotest.(check (list string)) "wrap-pure targets"
    [ "Unit.multiStep"; "Unit.mutateThenCall"; "Unit.mutateThenValidate" ]
    wrapped

let test_wrap_all_policy () =
  let config = { Config.default with Config.wrap_policy = Config.Wrap_all_non_atomic } in
  let program = parse Synthetic.source in
  let outcome = Mask.correct ~config program in
  let wrapped = List.map Method_id.to_string (Method_id.Set.elements outcome.Mask.wrapped) in
  Alcotest.(check (list string)) "wrap-all targets"
    [ "Facade.delegate"; "Facade.guardedDelegate"; "Unit.multiStep";
      "Unit.mutateThenCall"; "Unit.mutateThenValidate" ]
    wrapped

let test_do_not_wrap () =
  let excluded = Method_id.make "Unit" "multiStep" in
  let config = { Config.default with Config.do_not_wrap = [ excluded ] } in
  let program = parse Synthetic.source in
  let outcome = Mask.correct ~config program in
  Alcotest.(check bool) "excluded method not wrapped" false
    (Method_id.Set.mem excluded outcome.Mask.wrapped);
  Alcotest.(check int) "others still wrapped" 2
    (Method_id.Set.cardinal outcome.Mask.wrapped)

(* Transparency: when no masked method fails on a real (uninjected)
   path, the corrected program's output is identical to the original. *)
let transparent_src =
  {|
class Marker {
  field t;
  method init() { this.t = 0; return this; }
}
class Box {
  field n;
  method init() { this.n = 0; return this; }
  method add(k) throws OutOfMemoryError {
    this.n = this.n + k;
    var marker = new Marker();
    return this.n;
  }
}
function main() {
  var b = new Box();
  b.add(2);
  b.add(3);
  println("sum=" + b.n);
  return 0;
}
|}

let test_corrected_output_unchanged () =
  let program = parse transparent_src in
  let baseline = Failatom_minilang.Minilang.run_string transparent_src in
  let outcome = Mask.correct program in
  Alcotest.(check bool) "add was wrapped" true
    (Method_id.Set.mem (Method_id.make "Box" "add") outcome.Mask.wrapped);
  let vm = Mask.load_corrected Config.default ~targets:outcome.Mask.wrapped program in
  ignore (Failatom_minilang.Compile.run_main vm);
  Alcotest.(check string) "corrected program output" baseline
    (Failatom_minilang.Minilang.output vm)

(* The corrected program must actually repair the real-exception data
   corruption the synthetic driver demonstrates: after a masked
   mutateThenValidate(-1) fails, the count must NOT have leaked. *)
let test_rollback_semantics_end_to_end () =
  let contains ~needle haystack =
    let nl = String.length needle and hl = String.length haystack in
    let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
    nl = 0 || go 0
  in
  (* Unmasked, the failed mutateThenValidate leaks its increment. *)
  let unmasked = Failatom_minilang.Minilang.run_string Synthetic.source in
  Alcotest.(check bool) "unmasked leaks (count 8)" true
    (contains ~needle:"count after leak: 8" unmasked);
  (* Masked, the rollback repairs it. *)
  let program = parse Synthetic.source in
  let targets = Method_id.Set.singleton (Method_id.make "Unit" "mutateThenValidate") in
  let vm = Mask.load_corrected Config.default ~targets program in
  ignore (Failatom_minilang.Compile.run_main vm);
  Alcotest.(check bool) "masked repairs (count 9)" true
    (contains ~needle:"count after leak: 9" (Failatom_minilang.Minilang.output vm))

let masking_strategy_works strategy () =
  let config = { Config.default with Config.checkpoint_strategy = strategy } in
  let _, residual = residual_non_atomic ~config Synthetic.source in
  Alcotest.(check (list string)) "no residual (strategy)" []
    (List.map Method_id.to_string residual)

(* Binary flavor masking: attach atomicity filters to a compiled VM and
   observe rollback without any source rewriting. *)
let test_binary_masking () =
  let src =
    {|
class C {
  field n;
  field buddy;
  method init() { this.n = 0; this.buddy = newArray(2); return this; }
  method breaks(k) throws IllegalStateException {
    this.n = this.n + k;
    this.buddy[0] = k;
    throw new IllegalStateException("boom");
  }
}
function main() {
  var c = new C();
  try { c.breaks(7); } catch (IllegalStateException e) { }
  println(c.n + "/" + str(c.buddy[0]));
  return 0;
}
|}
  in
  let program = parse src in
  Alcotest.(check string) "unmasked leaks" "7/7\n"
    (Failatom_minilang.Minilang.run_string src);
  let vm = Failatom_minilang.Compile.program program in
  Mask.attach_masking Config.default
    ~targets:(Method_id.Set.singleton (Method_id.make "C" "breaks"))
    vm;
  ignore (Failatom_minilang.Compile.run_main vm);
  Alcotest.(check string) "binary masking rolls back" "0/null\n"
    (Failatom_minilang.Minilang.output vm)

(* Masking the workload applications: for every registry app, masking
   its pure non-atomic methods must close all original-name
   non-atomicity on re-detection.  Exercised on two representative apps
   here to keep the suite fast; the full sweep runs in the bench
   harness. *)
let test_masking_closes_apps () =
  List.iter
    (fun name ->
      let app = Option.get (Registry.find name) in
      let _, residual = residual_non_atomic app.Registry.source in
      Alcotest.(check (list string)) (name ^ " residual") []
        (List.map Method_id.to_string residual))
    [ "LinkedList"; "stdQ" ]

(* Regression: an OCaml-level abort (deadline, scheduler unwind)
   unwinding through a masked call never runs the filter's [post] — the
   wrapper's [unwind] hook must pop the entry, roll it back, and
   dispose it.  Before the hook existed the entry leaked: under the
   lazy strategy its shadow stayed attached to the write barrier
   forever, and the aborted call's mutations survived. *)
let unwind_leak_src =
  {|
class Spin {
  field x;
  method init() { this.x = 0; return this; }
  method spin() throws IllegalStateException {
    this.x = 1;
    while (0 < 1) { this.x = this.x + 1; }
    return this.x;
  }
}
function main() {
  var s = new Spin();
  return s.spin();
}
|}

let check_unwind_releases_checkpoint strategy () =
  let module Vm = Failatom_runtime.Vm in
  let module Heap = Failatom_runtime.Heap in
  let module Value = Failatom_runtime.Value in
  let config = { Config.default with Config.checkpoint_strategy = strategy } in
  let vm = Failatom_minilang.Compile.program (parse unwind_leak_src) in
  Mask.attach_masking config
    ~targets:(Method_id.Set.singleton (Method_id.make "Spin" "spin"))
    vm;
  Vm.arm_deadline vm ~timeout_s:0.05;
  (match Failatom_minilang.Compile.run_main vm with
   | _ -> Alcotest.fail "divergent masked call returned"
   | exception Vm.Deadline_exceeded -> ());
  Alcotest.(check int) "no shadow leaked on the write barrier" 0
    (List.length vm.Vm.heap.Heap.shadows);
  (* the aborted call's mutation was rolled back *)
  let x = ref None in
  Array.iter
    (fun payload ->
      match payload with
      | Some (Heap.Obj { cls = "Spin"; fields }) -> x := Hashtbl.find_opt fields "x"
      | _ -> ())
    vm.Vm.heap.Heap.store;
  match !x with
  | Some (Value.Int 0) -> ()
  | Some v ->
    Alcotest.failf "aborted mutation leaked: Spin.x = %s" (Value.to_string v)
  | _ -> Alcotest.fail "Spin instance not found on the heap"

(* Production wrappers on the concurrent apps: per-thread entry stacks
   and per-thread COW dirty sets must keep interleaved wrapped calls
   independent.  Under each preemptive schedule, a canaried production
   run must be byte-identical between the two rollback engines, roll
   back at least once, and validate every perturbation. *)
let check_concurrent_production name flavor engine () =
  let module Compile = Failatom_minilang.Compile in
  let module Sched = Failatom_runtime.Sched in
  let module Plan = Failatom_prod.Plan in
  let module Armed = Failatom_prod.Armed in
  let module Perturb = Failatom_prod.Perturb in
  let module Scorecard = Failatom_prod.Scorecard in
  let module Produce = Failatom_prod.Produce in
  let saved = !Compile.default_engine in
  Compile.default_engine := engine;
  Fun.protect ~finally:(fun () -> Compile.default_engine := saved) @@ fun () ->
  let program = parse (Option.get (Registry.find name)).Registry.source in
  (* sweep detection so the seeded schedule-only violations are
     classified — and therefore wrapped — like any pure non-atomic
     method *)
  let config =
    { Config.default with Config.schedules = [ "coop"; "slice:1"; "slice:2"; "slice:3" ] }
  in
  let detection = Detect.run ~config ~flavor program in
  let classification = Classify.classify detection in
  let plan = Plan.build ~config ~flavor ~program ~detection ~classification in
  let perturb =
    { Produce.seed = 11;
      rate_per_mille = 500;
      max_fires = None;
      point = Perturb.At_exit;
      fallback_exceptions = [] }
  in
  List.iter
    (fun spec ->
      let policy = Option.get (Sched.policy_of_string spec) in
      let run rollback =
        match Produce.run ~config ~rollback ~perturb ~policy ~times:2 ~plan program with
        | Ok r -> r
        | Error msg -> Alcotest.failf "%s under %s: %s" name spec msg
      in
      let cp = run Armed.Rb_checkpoint in
      let cow = run Armed.Rb_cow in
      Alcotest.(check (list string))
        (Printf.sprintf "%s under %s: outputs bitwise identical" name spec)
        (List.map (fun (r : Produce.run_report) -> r.Produce.output) cp.Produce.runs)
        (List.map (fun (r : Produce.run_report) -> r.Produce.output) cow.Produce.runs);
      Alcotest.(check bool)
        (Printf.sprintf "%s under %s: rollbacks exercised" name spec)
        true
        (Scorecard.hits cow.Produce.scorecard > 0);
      Alcotest.(check int)
        (Printf.sprintf "%s under %s: zero validation failures" name spec)
        0
        (Scorecard.failed cow.Produce.scorecard);
      (* every perturbation is accounted for: validated outright, or
         inconclusive because a concurrent thread wrote during the call *)
      Alcotest.(check int)
        (Printf.sprintf "%s under %s: every perturbation accounted" name spec)
        (Scorecard.fired cow.Produce.scorecard)
        (Scorecard.validated cow.Produce.scorecard
        + Scorecard.interfered cow.Produce.scorecard))
    [ "slice:1"; "slice:4"; "pct:3:7" ]

let suite =
  [ Alcotest.test_case "masking closes (source)" `Quick
      (check_masking_closes Detect.Source_weaving);
    Alcotest.test_case "masking closes (binary)" `Quick
      (check_masking_closes Detect.Load_time_filters);
    Alcotest.test_case "wrap-pure policy" `Quick test_wrap_pure_policy;
    Alcotest.test_case "wrap-all policy" `Quick test_wrap_all_policy;
    Alcotest.test_case "do-not-wrap" `Quick test_do_not_wrap;
    Alcotest.test_case "corrected output unchanged" `Quick test_corrected_output_unchanged;
    Alcotest.test_case "rollback repairs corruption" `Quick
      test_rollback_semantics_end_to_end;
    Alcotest.test_case "eager strategy" `Quick
      (masking_strategy_works Failatom_runtime.Checkpoint.Eager);
    Alcotest.test_case "lazy strategy" `Quick
      (masking_strategy_works Failatom_runtime.Checkpoint.Lazy);
    Alcotest.test_case "binary masking" `Quick test_binary_masking;
    Alcotest.test_case "masking closes apps" `Quick test_masking_closes_apps;
    Alcotest.test_case "unwind releases checkpoint (eager)" `Quick
      (check_unwind_releases_checkpoint Failatom_runtime.Checkpoint.Eager);
    Alcotest.test_case "unwind releases checkpoint (lazy)" `Quick
      (check_unwind_releases_checkpoint Failatom_runtime.Checkpoint.Lazy);
    Alcotest.test_case "concurrent production: StripedMap (closures)" `Quick
      (check_concurrent_production "StripedMap" Detect.Load_time_filters
         Failatom_minilang.Compile.Closures);
    Alcotest.test_case "concurrent production: StripedMap (bytecode)" `Quick
      (check_concurrent_production "StripedMap" Detect.Load_time_filters
         Failatom_minilang.Compile.Bytecode);
    Alcotest.test_case "concurrent production: BoundedBuffer (closures)" `Quick
      (check_concurrent_production "BoundedBuffer" Detect.Load_time_filters
         Failatom_minilang.Compile.Closures);
    Alcotest.test_case "concurrent production: BoundedBuffer (bytecode)" `Quick
      (check_concurrent_production "BoundedBuffer" Detect.Load_time_filters
         Failatom_minilang.Compile.Bytecode) ]
