(* The flat-bytecode engine (lib/minilang/bytecode.ml emission,
   lib/runtime/exec.ml dispatch) against the closure-tree engine it
   replaces as the default.

   The contract under test is observational identity: for every bundled
   application, both engines must produce bitwise-identical output,
   step/call/inline-cache/allocation counters, results — and, through a
   full detection phase, bitwise-identical run logs.  On top of the
   differential matrix there are unit tests for the peephole
   superinstruction fusion, the monomorphic inline caches under
   polymorphic and layout-shifting workloads, and properties for the
   incremental canonicalization memo ([Object_graph.Memo]) that the
   detector's snapshot comparisons lean on. *)

open Failatom_runtime
open Failatom_minilang
open Failatom_core
open Failatom_apps

let check = Alcotest.check

(* ---------------- differential harness ---------------- *)

type res = {
  out : string;
  steps : int;
  calls : int;
  ic_hits : int;
  ic_misses : int;
  allocs : int;
  result : string;
}

let run_engine engine src =
  let prog = Minilang.parse src in
  let vm = Compile.instantiate (Compile.image ~engine prog) in
  let result =
    match Compile.run_main vm with
    | v -> "value " ^ Value.to_display_string v
    | exception Vm.Mini_raise ev -> "raise " ^ ev.Vm.exn_class
    | exception Compile.Runtime_error (msg, pos) ->
      Printf.sprintf "error %s @%d:%d" msg pos.Ast.line pos.Ast.col
  in
  { out = Buffer.contents vm.Vm.out;
    steps = vm.Vm.steps;
    calls = vm.Vm.calls;
    ic_hits = vm.Vm.ic_hits;
    ic_misses = vm.Vm.ic_misses;
    allocs = Heap.allocations vm.Vm.heap;
    result }

(* Both engines on one source: every observable must match.  Returns
   the (shared) result for further assertions. *)
let differential ?(name = "program") src =
  let a = run_engine Compile.Closures src in
  let b = run_engine Compile.Bytecode src in
  check Alcotest.string (name ^ ": output") a.out b.out;
  check Alcotest.int (name ^ ": steps") a.steps b.steps;
  check Alcotest.int (name ^ ": calls") a.calls b.calls;
  check Alcotest.int (name ^ ": ic_hits") a.ic_hits b.ic_hits;
  check Alcotest.int (name ^ ": ic_misses") a.ic_misses b.ic_misses;
  check Alcotest.int (name ^ ": allocs") a.allocs b.allocs;
  check Alcotest.string (name ^ ": result") a.result b.result;
  b

let with_engine engine f =
  let saved = !Compile.default_engine in
  Compile.default_engine := engine;
  Fun.protect ~finally:(fun () -> Compile.default_engine := saved) f

(* ---------------- the app matrix ---------------- *)

let app_plain_case (app : Registry.t) =
  Alcotest.test_case app.Registry.name `Quick (fun () ->
      ignore (differential ~name:app.Registry.name app.Registry.source))

(* The strongest form of the identity: a complete detection phase —
   injection campaign, snapshots, shadows, marks, call profile — saved
   as a run log must be bitwise-equal between engines. *)
let app_detect_case (app : Registry.t) =
  Alcotest.test_case ("detect " ^ app.Registry.name) `Quick (fun () ->
      let prog = Minilang.parse app.Registry.source in
      let flavor = Harness.flavor_of_suite app.Registry.suite in
      let la =
        with_engine Compile.Closures (fun () -> Run_log.save (Detect.run ~flavor prog))
      in
      let lb =
        with_engine Compile.Bytecode (fun () -> Run_log.save (Detect.run ~flavor prog))
      in
      check Alcotest.string (app.Registry.name ^ ": run log") la lb)

(* ---------------- superinstruction fusion ---------------- *)

(* A linkage just rich enough to emit free-standing bodies: one known
   two-argument function [g], no classes, no methods. *)
let stub_linkage =
  { Bytecode.lk_resolve = (fun _ _ -> -1);
    lk_fn =
      (fun name ->
        if name = "g" then Some (2, fun _ _ -> Value.Null) else None);
    lk_class = (fun _ -> None);
    lk_is_exc = (fun _ _ -> false);
    lk_exn_matches = (fun _ _ _ -> false) }

(* Decodes a flat instruction array back to its opcode sequence using
   the per-opcode widths (instructions are fixed-width; sub-blocks live
   behind site records and are not traversed). *)
let opcodes (ops : int array) =
  let acc = ref [] in
  let pc = ref 0 in
  while !pc < Array.length ops do
    let op = ops.(!pc) in
    acc := op :: !acc;
    pc := !pc + Exec.op_width.(op)
  done;
  List.rev !acc

let main_opcodes ?defining params src_body =
  let src =
    let helpers = "function g(x, y) { return x; }" in
    match defining with
    | None ->
      Printf.sprintf "%s function probe(%s) { %s }" helpers
        (String.concat ", " params) src_body
    | Some _ ->
      Printf.sprintf "%s class C { field f; field a; field b; method probe(%s) { %s } }"
        helpers (String.concat ", " params) src_body
  in
  let prog = Minilang.parse src in
  let params', body =
    List.find_map
      (function
        | Ast.Func_decl f when f.Ast.f_name = "probe" -> Some (f.Ast.f_params, f.Ast.f_body)
        | Ast.Class_decl c ->
          List.find_map
            (fun (m : Ast.meth_decl) ->
              if m.Ast.m_name = "probe" then Some (m.Ast.m_params, m.Ast.m_body) else None)
            c.Ast.c_methods
        | Ast.Func_decl _ -> None)
      prog
    |> Option.get
  in
  let code, _ = Bytecode.compile_body stub_linkage ~defining params' body in
  opcodes code.Exec.c_main

let contains ops op = List.mem op ops

let check_fused name ops fused_op ~absent =
  check Alcotest.bool (name ^ ": emits " ^ Exec.op_names.(fused_op)) true
    (contains ops fused_op);
  List.iter
    (fun op ->
      check Alcotest.bool
        (name ^ ": no residual " ^ Exec.op_names.(op))
        false (contains ops op))
    absent

let test_fuse_lcbjf () =
  (* load; const; binop; jf — the universal guard shape *)
  let ops = main_opcodes [ "x" ] "if (x < 10) { return 1; } return 2;" in
  check_fused "lcbjf" ops Exec.op_lcbjf ~absent:[ Exec.op_binop; Exec.op_jf ]

let test_fuse_tret () =
  (* this; ret — the builder-pattern [return this] epilogue *)
  let ops = main_opcodes ~defining:("C", None) [] "return this;" in
  check_fused "tret" ops Exec.op_tret ~absent:[ Exec.op_this; Exec.op_ret ]

let test_fuse_csetft () =
  (* const; setfield-on-this — field initialization stores *)
  let ops = main_opcodes ~defining:("C", None) [] "this.f = 5; return 0;" in
  check_fused "csetft" ops Exec.op_csetft
    ~absent:[ Exec.op_setft; Exec.op_setfield ]

let test_fuse_tfcbjf () =
  (* this-field; const; binop; jf — guards over receiver state *)
  let ops =
    main_opcodes ~defining:("C", None) [] "if (this.f == 0) { return 1; } return 2;"
  in
  check_fused "tfcbjf" ops Exec.op_tfcbjf
    ~absent:[ Exec.op_tfcb; Exec.op_binop; Exec.op_jf ]

let test_fuse_fncalltf2 () =
  (* two this-field loads feeding a static function call *)
  let ops =
    main_opcodes ~defining:("C", None) [] "return g(this.a, this.b);"
  in
  check_fused "fncalltf2" ops Exec.op_fncalltf2
    ~absent:[ Exec.op_fncalltf; Exec.op_fncall; Exec.op_thisf ]

let test_fusion_blocked_across_labels () =
  (* the [x] load sits at a jump target (loop back-edge): fusing it
     with the following compare would execute the load under a stale
     operand when entered from the branch, so emission must keep the
     plain sequence at the label *)
  let ops =
    main_opcodes [ "x" ] "while (x < 3) { x = x + 1; } return x;"
  in
  (* the loop becomes a site record; the main stream keeps WHILE *)
  check Alcotest.bool "while persists as a site" true (contains ops Exec.op_while)

(* ---------------- inline caches ---------------- *)

let test_ic_polymorphic_site () =
  (* one call site, receivers alternating between two classes: the
     monomorphic cache must re-resolve on every class change and still
     dispatch correctly *)
  let src =
    {|
class A { method tag() { return 1; } }
class B { method tag() { return 2; } }
function main() {
  var xs = [new A(), new B(), new A(), new B()];
  var s = 0;
  for (var i = 0; i < 20; i = i + 1) {
    s = s + xs[i % 4].tag();
  }
  return s;
}
|}
  in
  let r = differential ~name:"polymorphic site" src in
  check Alcotest.string "sum" "value 30" r.result;
  (* the alternation defeats the cache by construction *)
  check Alcotest.bool "site actually misses" true (r.ic_misses > 2)

let test_ic_shadowed_field_layout () =
  (* an inherited getter runs the same code object for receivers of
     both classes; the subclass's extra field shifts the layout, so the
     field-offset cache inside the shared THISF site must notice the
     class change rather than read a stale slot *)
  let src =
    {|
class Base {
  field v;
  method init() { this.v = 10; return this; }
  method get() { return this.v; }
}
class Derived extends Base {
  field w;
  method init() { super.init(); this.w = 5; this.v = 20; return this; }
}
function main() {
  var b = new Base();
  var d = new Derived();
  var s = 0;
  for (var i = 0; i < 10; i = i + 1) {
    s = s + b.get() + d.get();
  }
  return s;
}
|}
  in
  let r = differential ~name:"shadowed field" src in
  check Alcotest.string "layout-correct reads" "value 300" r.result

let test_ic_inherited_init () =
  (* [new Sub(...)] where [init] lives on the superclass: the static
     new-site resolution must find the inherited initializer, and a
     second class at the same textual site must not reuse it *)
  let src =
    {|
class Base {
  field v;
  method init(v) { this.v = v; return this; }
}
class Sub extends Base { }
function main() {
  var a = new Sub(7);
  var b = new Base(35);
  return a.v + b.v;
}
|}
  in
  let r = differential ~name:"inherited init" src in
  check Alcotest.string "inherited init ran" "value 42" r.result

let test_ic_shared_across_instantiations () =
  (* inline caches live in the image and are shared by every VM
     instantiated from it: a second run (cache already warm) must be
     correct, and its hit counter must not be worse than the first's *)
  let src =
    {|
class C { field n; method init() { this.n = 0; return this; }
          method bump() { this.n = this.n + 1; return this.n; } }
function main() {
  var c = new C();
  var s = 0;
  for (var i = 0; i < 50; i = i + 1) { s = c.bump(); }
  return s;
}
|}
  in
  let image = Compile.image ~engine:Compile.Bytecode (Minilang.parse src) in
  let run () =
    let vm = Compile.instantiate image in
    let v = Compile.run_main vm in
    (Value.to_display_string v, vm.Vm.ic_hits)
  in
  let r1, hits1 = run () in
  let r2, hits2 = run () in
  check Alcotest.string "first run" "50" r1;
  check Alcotest.string "second run (warm cache)" "50" r2;
  check Alcotest.bool "warm run hits at least as often" true (hits2 >= hits1)

(* ---------------- incremental canonicalization memo ---------------- *)

let test_memo_hit_and_invalidate () =
  let heap = Heap.create () in
  let child = Heap.alloc_object heap ~cls:"L" [ ("v", Value.Int 1) ] in
  let root =
    Heap.alloc_object heap ~cls:"R" [ ("c", Value.Ref child); ("n", Value.Int 0) ]
  in
  let memo = Object_graph.Memo.create () in
  let roots = [ Value.Ref root ] in
  let n1 = Object_graph.Memo.canonical_many memo heap roots in
  check Alcotest.int "first lookup misses" 1 (Object_graph.Memo.misses memo);
  let n2 = Object_graph.Memo.canonical_many memo heap roots in
  check Alcotest.int "unchanged lookup hits" 1 (Object_graph.Memo.hits memo);
  check Alcotest.bool "hit is physically the cached node" true (n1 == n2);
  (* a write to a covered object invalidates *)
  Heap.set_field heap child "v" (Value.Int 2);
  let n3 = Object_graph.Memo.canonical_many memo heap roots in
  check Alcotest.int "write forces recompute" 2 (Object_graph.Memo.misses memo);
  check Alcotest.bool "recomputed form differs" false (Object_graph.equal n1 n3);
  check Alcotest.bool "recomputed form is from-scratch" true
    (Object_graph.equal n3 (Object_graph.canonical_many heap roots))

let test_memo_unrelated_write_revalidates () =
  let heap = Heap.create () in
  let root = Heap.alloc_object heap ~cls:"R" [ ("n", Value.Int 0) ] in
  let other = Heap.alloc_object heap ~cls:"O" [ ("n", Value.Int 0) ] in
  let memo = Object_graph.Memo.create () in
  let roots = [ Value.Ref root ] in
  let n1 = Object_graph.Memo.canonical_many memo heap roots in
  (* a write outside the covered graph bumps the heap generation but
     not the covered stamps: the entry revalidates via the stamp scan *)
  Heap.set_field heap other "n" (Value.Int 9);
  let n2 = Object_graph.Memo.canonical_many memo heap roots in
  check Alcotest.int "unrelated write still hits" 1 (Object_graph.Memo.hits memo);
  check Alcotest.bool "same node served" true (n1 == n2)

let test_memo_rollback_invalidates () =
  (* checkpoint rollback restores payloads behind the write barrier's
     back; the restore must stamp, or the memo would serve the mutated
     form after the rollback *)
  let heap = Heap.create () in
  let root = Heap.alloc_object heap ~cls:"R" [ ("n", Value.Int 0) ] in
  let memo = Object_graph.Memo.create () in
  let roots = [ Value.Ref root ] in
  let before = Object_graph.Memo.canonical_many memo heap roots in
  Checkpoint.with_checkpoint ~strategy:Checkpoint.Lazy heap roots (fun cp ->
      Heap.set_field heap root "n" (Value.Int 1);
      ignore (Object_graph.Memo.canonical_many memo heap roots);
      Checkpoint.rollback cp);
  let after = Object_graph.Memo.canonical_many memo heap roots in
  check Alcotest.bool "restored form equals the original" true
    (Object_graph.equal before after);
  check Alcotest.bool "restored form is from-scratch" true
    (Object_graph.equal after (Object_graph.canonical_many heap roots))

(* The property: through arbitrary interleavings of mutation storms and
   checkpoint/rollback cycles, the memoized canonical form always
   equals a from-scratch canonicalization, and a quiescent repeat
   lookup serves the identical node.  Generators are shared with the
   checkpoint suite. *)
let memo_incremental_prop =
  QCheck2.Test.make ~name:"memoized canonical == from-scratch under mutation"
    ~count:200
    QCheck2.Gen.(triple (int_range 1 10) (int_range 0 25) int)
    (fun (n, steps, seed) ->
      let heap = Heap.create () in
      let rs = Random.State.make [| seed |] in
      let ids = Test_checkpoint.build_random_graph heap rs n in
      let roots = [ Value.Ref ids.(0) ] in
      let memo = Object_graph.Memo.create () in
      let ok = ref true in
      for _round = 1 to 6 do
        (if Random.State.bool rs then
           Checkpoint.with_checkpoint ~strategy:Checkpoint.Lazy heap roots
             (fun cp ->
               Test_checkpoint.mutate_randomly heap rs ids steps;
               if Random.State.bool rs then Checkpoint.rollback cp)
         else Test_checkpoint.mutate_randomly heap rs ids steps);
        let memoized = Object_graph.Memo.canonical_many memo heap roots in
        let scratch = Object_graph.canonical_many heap roots in
        if not (Object_graph.equal memoized scratch) then ok := false;
        let again = Object_graph.Memo.canonical_many memo heap roots in
        if not (again == memoized) then ok := false
      done;
      !ok)

(* Detection marks with the memo in the loop are exercised end-to-end
   by the app matrix above (Detect.run routes every eager snapshot and
   cow after-form through [Injection]'s memo); this suite additionally
   pins the memo's counters being visible through the injection state. *)
let test_memo_used_by_detection () =
  let module Obs = Failatom_obs.Obs in
  Obs.with_enabled true (fun () ->
      Obs.reset ();
      let app = Option.get (Registry.find "LinkedList") in
      let prog = Minilang.parse app.Registry.source in
      ignore (Detect.run ~flavor:Detect.Load_time_filters prog);
      let snap = Obs.snapshot () in
      let counter name =
        List.assoc_opt name snap.Obs.s_counters |> Option.value ~default:0
      in
      check Alcotest.bool "memo counters move under detection" true
        (counter "detect.canon_memo_hits" + counter "detect.canon_memo_misses" > 0))

(* ---------------- suite ---------------- *)

let suite =
  [ Alcotest.test_case "fusion: lcbjf" `Quick test_fuse_lcbjf;
    Alcotest.test_case "fusion: tret" `Quick test_fuse_tret;
    Alcotest.test_case "fusion: csetft" `Quick test_fuse_csetft;
    Alcotest.test_case "fusion: tfcbjf" `Quick test_fuse_tfcbjf;
    Alcotest.test_case "fusion: fncalltf2" `Quick test_fuse_fncalltf2;
    Alcotest.test_case "fusion: loops stay sites" `Quick test_fusion_blocked_across_labels;
    Alcotest.test_case "ic: polymorphic site" `Quick test_ic_polymorphic_site;
    Alcotest.test_case "ic: shadowed field layout" `Quick test_ic_shadowed_field_layout;
    Alcotest.test_case "ic: inherited init" `Quick test_ic_inherited_init;
    Alcotest.test_case "ic: shared across VMs" `Quick test_ic_shared_across_instantiations;
    Alcotest.test_case "memo: hit/invalidate" `Quick test_memo_hit_and_invalidate;
    Alcotest.test_case "memo: unrelated write" `Quick test_memo_unrelated_write_revalidates;
    Alcotest.test_case "memo: rollback" `Quick test_memo_rollback_invalidates;
    Alcotest.test_case "memo: detection counters" `Quick test_memo_used_by_detection;
    QCheck_alcotest.to_alcotest memo_incremental_prop ]
  @ List.map app_plain_case Registry.catalog
  @ List.map app_detect_case Registry.catalog
