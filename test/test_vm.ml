(* Tests for the VM: class table, dispatch, inheritance, the built-in
   exception hierarchy, and pre/post filter interposition (the JWG
   analog of paper §5.2). *)

open Failatom_runtime

let check = Alcotest.check

(* A VM with:  class A { m/0 returns 1; n/0 returns 10 }
               class B extends A { m/0 returns 2 }        *)
let fixture () =
  let vm = Vm.create () in
  ignore (Vm.add_class vm "A" ~fields:[ "x" ]);
  ignore (Vm.add_class vm ~super:"A" "B" ~fields:[ "y" ]);
  ignore
    (Vm.add_method vm "A" ~name:"m" ~params:[] ~throws:[] (fun _ _ _ -> Value.Int 1));
  ignore
    (Vm.add_method vm "A" ~name:"n" ~params:[] ~throws:[] (fun _ _ _ -> Value.Int 10));
  ignore
    (Vm.add_method vm "B" ~name:"m" ~params:[] ~throws:[] (fun _ _ _ -> Value.Int 2));
  let a = Heap.alloc_object vm.Vm.heap ~cls:"A" [ ("x", Value.Null) ] in
  let b = Heap.alloc_object vm.Vm.heap ~cls:"B" [ ("x", Value.Null); ("y", Value.Null) ] in
  (vm, Value.Ref a, Value.Ref b)

let invoke_int vm recv name =
  match Vm.invoke vm recv name [] with
  | Value.Int n -> n
  | v -> Alcotest.failf "expected int, got %s" (Value.to_string v)

let test_dispatch_and_override () =
  let vm, a, b = fixture () in
  check Alcotest.int "A.m" 1 (invoke_int vm a "m");
  check Alcotest.int "B.m overrides" 2 (invoke_int vm b "m");
  check Alcotest.int "B inherits n" 10 (invoke_int vm b "n")

let test_unknown_method () =
  let vm, a, _ = fixture () in
  try
    ignore (Vm.invoke vm a "nope" []);
    Alcotest.fail "expected Unknown_method"
  with Vm.Unknown_method (cls, m) ->
    check Alcotest.(pair string string) "error contents" ("A", "nope") (cls, m)

let test_call_on_null_raises_npe () =
  let vm, _, _ = fixture () in
  try
    ignore (Vm.invoke vm Value.Null "m" []);
    Alcotest.fail "expected NullPointerException"
  with Vm.Mini_raise e ->
    check Alcotest.string "npe" "NullPointerException" e.Vm.exn_class

let test_subclass_relation () =
  let vm, _, _ = fixture () in
  check Alcotest.bool "B <= A" true (Vm.is_subclass vm "B" "A");
  check Alcotest.bool "A <= A" true (Vm.is_subclass vm "A" "A");
  check Alcotest.bool "A !<= B" false (Vm.is_subclass vm "A" "B");
  check Alcotest.bool "NPE <= RuntimeException" true
    (Vm.is_subclass vm "NullPointerException" "RuntimeException");
  check Alcotest.bool "NPE <= Throwable" true
    (Vm.is_subclass vm "NullPointerException" Vm.throwable);
  check Alcotest.bool "OOM <= Error" true (Vm.is_subclass vm "OutOfMemoryError" "Error");
  check Alcotest.bool "OOM !<= RuntimeException" false
    (Vm.is_subclass vm "OutOfMemoryError" "RuntimeException")

let test_make_exn_is_heap_object () =
  let vm, _, _ = fixture () in
  let e = Vm.make_exn vm "IllegalStateException" "boom" in
  check Alcotest.string "class" "IllegalStateException" e.Vm.exn_class;
  check Alcotest.string "message" "boom" e.Vm.message;
  (match e.Vm.exn_obj with
   | Value.Ref id ->
     check Alcotest.bool "message field set" true
       (Heap.get_field vm.Vm.heap id "message" = Some (Value.Str "boom"))
   | _ -> Alcotest.fail "exception carries a heap object");
  check Alcotest.bool "matches super" true (Vm.exn_matches vm e "RuntimeException");
  check Alcotest.bool "no match sibling" false (Vm.exn_matches vm e "NullPointerException")

let test_all_fields_inherited () =
  let vm, _, _ = fixture () in
  check Alcotest.(list string) "B fields" [ "x"; "y" ] (Vm.all_fields vm "B")

(* ---------------- filters ---------------- *)

let trace_filter log name =
  { Vm.filt_name = name;
    pre =
      (fun _ _ _ _ ->
        log := (name ^ ":pre") :: !log;
        Vm.Proceed);
    post =
      (fun _ _ _ _ _ ->
        log := (name ^ ":post") :: !log;
        Vm.Pass);
    unwind = Vm.no_unwind }

let test_filter_order () =
  let vm, a, _ = fixture () in
  let log = ref [] in
  let meth = Vm.find_method vm "A" "m" in
  Vm.attach_filter meth (trace_filter log "inner");
  Vm.attach_filter meth (trace_filter log "outer");
  ignore (Vm.invoke vm a "m" []);
  check
    Alcotest.(list string)
    "outermost first" [ "outer:pre"; "inner:pre"; "inner:post"; "outer:post" ]
    (List.rev !log)

let test_filter_pre_return_short_circuits () =
  let vm, a, _ = fixture () in
  let meth = Vm.find_method vm "A" "m" in
  Vm.attach_filter meth
    { Vm.filt_name = "stub";
      pre = (fun _ _ _ _ -> Vm.Pre_return (Value.Int 99));
      post = (fun _ _ _ _ _ -> Vm.Pass);
      unwind = Vm.no_unwind };
  check Alcotest.int "stubbed result" 99 (invoke_int vm a "m")

let test_filter_pre_raise () =
  let vm, a, _ = fixture () in
  let meth = Vm.find_method vm "A" "m" in
  Vm.attach_filter meth
    { Vm.filt_name = "bomb";
      pre = (fun vm _ _ _ -> Vm.Pre_raise (Vm.make_exn vm "OutOfMemoryError" "inj"));
      post = (fun _ _ _ _ _ -> Vm.Pass);
      unwind = Vm.no_unwind };
  try
    ignore (Vm.invoke vm a "m" []);
    Alcotest.fail "expected injection"
  with Vm.Mini_raise e -> check Alcotest.string "injected" "OutOfMemoryError" e.Vm.exn_class

let test_filter_post_observes_exception_and_swallows () =
  let vm, a, _ = fixture () in
  let meth = Vm.find_method vm "A" "m" in
  (* innermost filter raises on return; outer one swallows it *)
  Vm.attach_filter meth
    { Vm.filt_name = "thrower";
      pre = (fun _ _ _ _ -> Vm.Proceed);
      post = (fun vm _ _ _ _ -> Vm.Post_raise (Vm.make_exn vm "IllegalStateException" "x"));
      unwind = Vm.no_unwind };
  let observed = ref None in
  Vm.attach_filter meth
    { Vm.filt_name = "swallower";
      pre = (fun _ _ _ _ -> Vm.Proceed);
      post =
        (fun _ _ _ _ result ->
          (match result with
           | Error e -> observed := Some e.Vm.exn_class
           | Ok _ -> ());
          Vm.Post_return (Value.Int 0));
      unwind = Vm.no_unwind };
  check Alcotest.int "swallowed to 0" 0 (invoke_int vm a "m");
  check Alcotest.(option string) "outer saw the exception" (Some "IllegalStateException")
    !observed

let test_detach_filter () =
  let vm, a, _ = fixture () in
  let log = ref [] in
  let meth = Vm.find_method vm "A" "m" in
  Vm.attach_filter meth (trace_filter log "t");
  Vm.detach_filter meth "t";
  ignore (Vm.invoke vm a "m" []);
  check Alcotest.int "no trace" 0 (List.length !log)

let test_attach_everywhere () =
  let vm, a, b = fixture () in
  let count = ref 0 in
  Vm.attach_filter_everywhere vm
    { Vm.filt_name = "count";
      pre =
        (fun _ _ _ _ ->
          incr count;
          Vm.Proceed);
      post = (fun _ _ _ _ _ -> Vm.Pass);
      unwind = Vm.no_unwind };
  ignore (Vm.invoke vm a "m" []);
  ignore (Vm.invoke vm b "m" []);
  ignore (Vm.invoke vm b "n" []);
  check Alcotest.int "three filtered calls" 3 !count;
  check Alcotest.int "vm call counter" 3 vm.Vm.calls

let test_stack_overflow_guard () =
  let vm = Vm.create () in
  ignore (Vm.add_class vm "R");
  ignore
    (Vm.add_method vm "R" ~name:"loop" ~params:[] ~throws:[] (fun vm this _ ->
         Vm.invoke vm this "loop" []));
  let r = Heap.alloc_object vm.Vm.heap ~cls:"R" [] in
  try
    ignore (Vm.invoke vm (Value.Ref r) "loop" []);
    Alcotest.fail "expected StackOverflowError"
  with Vm.Mini_raise e ->
    check Alcotest.string "overflow" "StackOverflowError" e.Vm.exn_class

let suite =
  [ Alcotest.test_case "dispatch and override" `Quick test_dispatch_and_override;
    Alcotest.test_case "unknown method" `Quick test_unknown_method;
    Alcotest.test_case "call on null" `Quick test_call_on_null_raises_npe;
    Alcotest.test_case "subclass relation" `Quick test_subclass_relation;
    Alcotest.test_case "exceptions are objects" `Quick test_make_exn_is_heap_object;
    Alcotest.test_case "inherited fields" `Quick test_all_fields_inherited;
    Alcotest.test_case "filter order" `Quick test_filter_order;
    Alcotest.test_case "pre_return short-circuit" `Quick test_filter_pre_return_short_circuits;
    Alcotest.test_case "pre_raise injection" `Quick test_filter_pre_raise;
    Alcotest.test_case "post observes and swallows" `Quick test_filter_post_observes_exception_and_swallows;
    Alcotest.test_case "detach filter" `Quick test_detach_filter;
    Alcotest.test_case "attach everywhere" `Quick test_attach_everywhere;
    Alcotest.test_case "stack overflow guard" `Quick test_stack_overflow_guard ]
