(* Interleaving-based non-atomicity detection: the schedule axis.

   The three concurrent Table-1 analogues each carry one seeded
   violation that injection alone cannot expose — the probe method
   mutates nothing, so under the cooperative schedule every injected
   unwind sees an unchanged heap.  Only the cross product of schedule
   exploration and injection detects it.  These tests pin that
   differential (per app, per flavor), engine equivalence under
   preemptive schedules, byte-identity of sequential detection with
   schedules configured, campaign/sequential agreement including
   journal resume, replay of individual runs from their journaled
   schedule specs, and the per-thread COW dirty-set partition. *)

open Failatom_core
open Failatom_runtime
open Failatom_apps
module Minilang = Failatom_minilang.Minilang
module Compile = Failatom_minilang.Compile
module Campaign = Failatom_campaign.Campaign
module Journal = Failatom_campaign.Journal
module Progress = Failatom_campaign.Progress

let parse = Minilang.parse

(* The `--schedules 4` expansion: coop plus three slice seeds.  This is
   the sweep EXPERIMENTS.md reports; it exposes all three seeded
   violations. *)
let sweep = [ "coop"; "slice:1"; "slice:2"; "slice:3" ]
let sweep_config = { Config.default with Config.schedules = sweep }

(* app name, seeded read-only probe whose non-atomicity needs the
   schedule axis *)
let seeded =
  [ ("StripedMap", Method_id.make "StripedMap" "snapshotTotal");
    ("BoundedBuffer", Method_id.make "BoundedBuffer" "audit");
    ("WorkQueue", Method_id.make "WorkQueue" "progress") ]

let verdict_t =
  Alcotest.testable
    (Fmt.of_to_string Classify.verdict_name)
    (fun (a : Classify.verdict) b -> a = b)

let find_app name = Option.get (Registry.find name)

(* ------------------------------------------------------------------ *)
(* (a) the differential: violation detected only under the sweep       *)
(* ------------------------------------------------------------------ *)

let check_schedule_differential (name, meth) flavor () =
  let program = parse (find_app name).Registry.source in
  let coop = Detect.run ~flavor program in
  let swept = Detect.run ~config:sweep_config ~flavor program in
  Alcotest.(check bool) "coop transparent" true coop.Detect.transparent;
  Alcotest.(check bool) "sweep transparent" true swept.Detect.transparent;
  (* one full unpruned campaign per schedule, one probe each *)
  Alcotest.(check int) "injections scale with the schedule count"
    (List.length sweep * coop.Detect.injections)
    swept.Detect.injections;
  let verdict_of d =
    match Classify.verdict (Classify.classify d) meth with
    | Some v -> v
    | None -> Alcotest.failf "%s not classified" (Method_id.to_string meth)
  in
  Alcotest.check verdict_t "atomic under coop alone" Classify.Atomic (verdict_of coop);
  Alcotest.check verdict_t "pure non-atomic under the sweep"
    Classify.Pure_non_atomic (verdict_of swept);
  (* records are tagged with the schedule they ran under: coop runs
     carry no sched info (journal byte-compat), non-coop runs carry
     their spec and a 16-hex-digit decision digest *)
  List.iter
    (fun (r : Marks.run_record) ->
      match r.Marks.sched with
      | None -> ()
      | Some s ->
        Alcotest.(check bool)
          "spec is from the sweep" true
          (List.mem s.Marks.sched_spec (List.tl sweep));
        Alcotest.(check int) "digest length" 16 (String.length s.Marks.sched_digest))
    swept.Detect.runs;
  Alcotest.(check bool) "coop-only runs never carry sched info" true
    (List.for_all (fun (r : Marks.run_record) -> r.Marks.sched = None) coop.Detect.runs);
  let tagged =
    List.length
      (List.filter (fun (r : Marks.run_record) -> r.Marks.sched <> None) swept.Detect.runs)
  in
  (* three of the four phases are non-coop: each contributes its
     injections plus its probe *)
  Alcotest.(check int) "three quarters of the sweep is tagged"
    (3 * (coop.Detect.injections + 1))
    tagged

let differential_cases =
  List.concat_map
    (fun app ->
      List.map
        (fun flavor ->
          Alcotest.test_case
            (Printf.sprintf "schedule differential %s (%s)" (fst app)
               (Detect.flavor_name flavor))
            `Slow
            (check_schedule_differential app flavor))
        [ Detect.Source_weaving; Detect.Load_time_filters ])
    seeded

(* ------------------------------------------------------------------ *)
(* (b) engine equivalence under preemptive schedules                   *)
(* ------------------------------------------------------------------ *)

let with_engine engine f =
  let saved = !Compile.default_engine in
  Compile.default_engine := engine;
  Fun.protect ~finally:(fun () -> Compile.default_engine := saved) f

(* Preemption opportunities are method-call boundaries, counted
   identically by both engines — so a full swept detection, serialized
   as a run log (schedule specs, decision digests, marks, outputs),
   must be bitwise-equal between closures and bytecode. *)
let test_engine_equivalence () =
  let program = parse (find_app "WorkQueue").Registry.source in
  let log engine =
    with_engine engine (fun () ->
        Run_log.save (Detect.run ~config:sweep_config program))
  in
  Alcotest.(check string) "closures == bytecode under the sweep"
    (log Compile.Closures) (log Compile.Bytecode)

(* ------------------------------------------------------------------ *)
(* (c) sequential programs: schedules configured, nothing changes      *)
(* ------------------------------------------------------------------ *)

let check_sequential_unchanged name () =
  let program = parse (find_app name).Registry.source in
  let before = Run_log.save (Detect.run program) in
  let after = Detect.run ~config:sweep_config program in
  Alcotest.(check string)
    "run log byte-identical with schedules configured" before (Run_log.save after);
  Alcotest.(check bool) "no record carries sched info" true
    (List.for_all (fun (r : Marks.run_record) -> r.Marks.sched = None) after.Detect.runs)

(* ------------------------------------------------------------------ *)
(* (d) campaign agreement and journal resume across phases             *)
(* ------------------------------------------------------------------ *)

let with_temp_journal f =
  let path = Filename.temp_file "failatom_conc" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

let truncate_journal path ~keep =
  let lines = String.split_on_char '\n' (read_file path) in
  let buf = Buffer.create 4096 in
  let kept = ref 0 in
  List.iter
    (fun line ->
      if !kept < keep then begin
        Buffer.add_string buf line;
        Buffer.add_char buf '\n';
        if String.equal line "endrun" then incr kept
      end)
    lines;
  write_file path (Buffer.contents buf)

let test_campaign_agreement () =
  let program = parse (find_app "WorkQueue").Registry.source in
  let seq = Detect.run ~config:sweep_config program in
  let par, _ = Campaign.run ~config:sweep_config ~jobs:4 program in
  Alcotest.(check bool) "identical run records" true (seq.Detect.runs = par.Detect.runs);
  Alcotest.(check int) "same injections" seq.Detect.injections par.Detect.injections;
  Alcotest.(check bool) "same transparency" seq.Detect.transparent par.Detect.transparent

(* A killed swept campaign resumes from a journal holding several
   phases' runs mixed; each phase must adopt exactly its own prior
   work, and the merged result must equal the uninterrupted one. *)
let test_campaign_resume_partitions () =
  let program = parse (find_app "BoundedBuffer").Registry.source in
  let uninterrupted, _ = Campaign.run ~config:sweep_config ~jobs:2 program in
  with_temp_journal (fun journal ->
      let _ = Campaign.run ~config:sweep_config ~jobs:2 ~journal program in
      (* cut deep enough into the journal that several phases' records
         (coop plus at least one slice phase) are in the kept prefix *)
      let keep = (List.length uninterrupted.Detect.runs * 3 / 8) + 2 in
      truncate_journal journal ~keep;
      let resumed, summary =
        Campaign.run ~config:sweep_config ~jobs:2 ~journal ~resume:true program
      in
      Alcotest.(check bool)
        "resumed result identical to uninterrupted" true
        (uninterrupted.Detect.runs = resumed.Detect.runs);
      Alcotest.(check bool) "same transparency"
        uninterrupted.Detect.transparent resumed.Detect.transparent;
      Alcotest.(check bool) "journaled prefix adopted" true
        (summary.Progress.reused > 0);
      (* a complete journal executes nothing on resume *)
      let again, s2 =
        Campaign.run ~config:sweep_config ~jobs:2 ~journal ~resume:true program
      in
      Alcotest.(check int) "complete journal: nothing executed" 0 s2.Progress.executed;
      Alcotest.(check bool) "complete journal: identical result" true
        (uninterrupted.Detect.runs = again.Detect.runs))

(* ------------------------------------------------------------------ *)
(* (e) replay: a journaled record reproduces bit-for-bit               *)
(* ------------------------------------------------------------------ *)

(* Every concurrent run is a pure function of (program, threshold,
   schedule spec): re-executing any record of a swept detection with
   the spec it carries reproduces the record exactly — marks, output,
   switch count, decision digest. *)
let test_replay_bit_identity () =
  let program = parse (find_app "WorkQueue").Registry.source in
  let d = Detect.run ~config:sweep_config program in
  let compiled = Detect.compile Detect.Source_weaving program in
  let prepare (_ : Vm.t) = () in
  let noncoop =
    List.filter (fun (r : Marks.run_record) -> r.Marks.sched <> None) d.Detect.runs
  in
  Alcotest.(check bool) "swept detection has non-coop records" true (noncoop <> []);
  (* a sample across the phase: first, a middle record and the last *)
  let n = List.length noncoop in
  List.iter
    (fun (r : Marks.run_record) ->
      let spec = (Option.get r.Marks.sched).Marks.sched_spec in
      let policy = Option.get (Sched.policy_of_string spec) in
      let replayed =
        Detect.run_once ~schedule:(spec, policy) compiled d.Detect.config
          d.Detect.analyzer ~prepare ~threshold:r.Marks.injection_point
      in
      Alcotest.(check bool)
        (Printf.sprintf "threshold %d under %s replays bit-for-bit"
           r.Marks.injection_point spec)
        true (replayed = r))
    [ List.hd noncoop; List.nth noncoop (n / 2); List.nth noncoop (n - 1) ]

(* ------------------------------------------------------------------ *)
(* (f) per-thread COW dirty sets                                       *)
(* ------------------------------------------------------------------ *)

(* A dirty object belongs to exactly one thread — the one whose write
   first saved it — so the per-thread sets partition the merged dirty
   set.  The property drives random cross-thread mutation scripts and
   checks the partition against an independently tracked first-writer
   map. *)
let dirty_partition_prop =
  QCheck2.Test.make ~name:"per-thread dirty sets partition the shadow's dirty set"
    ~count:200
    QCheck2.Gen.(triple (int_range 1 12) (int_range 0 40) int)
    (fun (nobjs, steps, seed) ->
      let heap = Heap.create () in
      let ids =
        Array.init nobjs (fun i ->
            Heap.alloc_object heap ~cls:"C" [ ("v", Value.Int i) ])
      in
      let rs = Random.State.make [| seed |] in
      Shadow.with_shadow heap (fun sh ->
          let first_writer = Hashtbl.create 16 in
          for _ = 1 to steps do
            let tid = Random.State.int rs 4 in
            let id = ids.(Random.State.int rs nobjs) in
            Heap.set_cur_tid heap tid;
            if not (Hashtbl.mem first_writer id) then Hashtbl.add first_writer id tid;
            if Random.State.int rs 8 = 0 && Heap.mem heap id then Heap.free heap id
            else if Heap.mem heap id then
              Heap.set_field heap id "v" (Value.Int (Random.State.int rs 1000))
          done;
          let merged = ref [] in
          Shadow.iter_saved sh (fun id _ -> merged := id :: !merged);
          let merged = List.sort compare !merged in
          let by_thread = Shadow.dirty_by_thread sh in
          let union = List.sort compare (List.concat_map snd by_thread) in
          (* union over threads = merged dirty set, with no aliasing:
             each object appears under exactly its first writer *)
          union = merged
          && List.for_all
               (fun (tid, objs) ->
                 List.for_all
                   (fun id -> Hashtbl.find_opt first_writer id = Some tid)
                   objs)
               by_thread
          && Shadow.dirty_count sh = List.length merged))

(* Directed shape of the same guarantee: a second thread's write to an
   already-dirty object must not move it between dirty sets. *)
let test_no_cross_thread_alias () =
  let heap = Heap.create () in
  let id = Heap.alloc_object heap ~cls:"C" [ ("v", Value.Int 0) ] in
  Shadow.with_shadow heap (fun sh ->
      Heap.set_cur_tid heap 1;
      Heap.set_field heap id "v" (Value.Int 1);
      Heap.set_cur_tid heap 2;
      Heap.set_field heap id "v" (Value.Int 2);
      Alcotest.(check bool) "owned by the first writer only" true
        (Shadow.dirty_by_thread sh = [ (1, [ id ]) ]);
      (* the saved payload is still the pre-write one *)
      match Shadow.saved_payload sh id with
      | Some (Heap.Obj { fields; _ }) ->
        Alcotest.(check bool) "pre-write payload saved" true
          (Hashtbl.find_opt fields "v" = Some (Value.Int 0))
      | _ -> Alcotest.fail "expected a saved object payload")

(* Heap identities come from an Atomic counter: concurrent heap
   creation across domains (the campaign's workers) must never produce
   a duplicate uid. *)
let test_heap_uids_distinct_across_domains () =
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () -> List.init 64 (fun _ -> (Heap.create ()).Heap.uid)))
  in
  let uids = List.concat_map Domain.join domains in
  Alcotest.(check int) "no uid collision across domains"
    (List.length uids)
    (List.length (List.sort_uniq compare uids))

let suite =
  [ Alcotest.test_case "engines agree under the sweep" `Slow test_engine_equivalence;
    Alcotest.test_case "sequential detection unchanged (Synthetic)" `Quick
      (check_sequential_unchanged "Synthetic");
    Alcotest.test_case "sequential detection unchanged (LinkedList)" `Slow
      (check_sequential_unchanged "LinkedList");
    Alcotest.test_case "campaign agrees with sequential sweep" `Slow
      test_campaign_agreement;
    Alcotest.test_case "campaign resume partitions phases" `Slow
      test_campaign_resume_partitions;
    Alcotest.test_case "journaled records replay bit-for-bit" `Slow
      test_replay_bit_identity;
    Alcotest.test_case "no cross-thread shadow aliasing" `Quick
      test_no_cross_thread_alias;
    Alcotest.test_case "heap uids distinct across domains" `Quick
      test_heap_uids_distinct_across_domains;
    QCheck_alcotest.to_alcotest dirty_partition_prop ]
  @ differential_cases
