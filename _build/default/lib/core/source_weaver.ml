(* Source-code weaving (paper §5.1, the AspectC++/CINT path).

   The weaver rewrites the program text itself: every method [m] of
   class [C] is renamed to a mangled private name, and a wrapper method
   with the original name is spliced into the class.  All existing call
   sites therefore reach the wrapper without being touched — the same
   effect AspectC++ achieves with call-site advice.  Wrapper bodies call
   the engine through reflective [__]-hooks; the woven program is
   ordinary MiniLang and can be pretty-printed for inspection.

   The mangled name carries the defining class ([__orig__C__m]) so that
   a wrapper inherited by a subclass still reaches *its own* class's
   original implementation even when the subclass overrides [m]. *)

open Failatom_minilang

type kind = Injection | Masking

let prefix = function Injection -> "__orig" | Masking -> "__msk"

let mangle kind (id : Method_id.t) =
  Printf.sprintf "%s__%s__%s" (prefix kind) id.Method_id.cls id.Method_id.name

(* Recovers the original method id from a mangled name, if it is one. *)
let demangle name =
  let strip p =
    let pl = String.length p in
    if String.length name > pl && String.sub name 0 pl = p then
      let rest = String.sub name pl (String.length name - pl) in
      match String.index_opt rest '_' with
      | Some _ -> (
        (* rest is "<cls>__<meth>"; split on the first "__" *)
        let rec find i =
          if i + 1 >= String.length rest then None
          else if rest.[i] = '_' && rest.[i + 1] = '_' then Some i
          else find (i + 1)
        in
        match find 0 with
        | Some i ->
          Some
            (Method_id.make (String.sub rest 0 i)
               (String.sub rest (i + 2) (String.length rest - i - 2)))
        | None -> None)
      | None -> None
    else None
  in
  match strip "__orig__" with Some id -> Some id | None -> strip "__msk__"

let args_array params = Ast.mk_expr (Ast.Array_lit (List.map Ast.var params))

(* The injection wrapper of Listing 1, as MiniLang source. *)
let injection_wrapper cls (m : Ast.meth_decl) : Ast.meth_decl =
  let id = Method_id.make cls m.Ast.m_name in
  let orig = mangle Injection id in
  let cls_lit = Ast.str_lit cls and name_lit = Ast.str_lit m.Ast.m_name in
  let params = m.Ast.m_params in
  let body =
    [ Ast.mk_stmt (Ast.Expr_stmt (Ast.fn_call "__inject" [ cls_lit; name_lit ]));
      Ast.mk_stmt
        (Ast.Var_decl ("__snap", Ast.fn_call "__snapshot" [ Ast.this_e; args_array params ]));
      Ast.mk_stmt
        (Ast.Try
           ( [ Ast.mk_stmt
                 (Ast.Var_decl ("__r", Ast.call Ast.this_e orig (List.map Ast.var params)));
               Ast.mk_stmt (Ast.Expr_stmt (Ast.fn_call "__drop" [ Ast.var "__snap" ]));
               Ast.mk_stmt (Ast.Return (Some (Ast.var "__r"))) ],
             [ { Ast.cc_class = "Throwable";
                 cc_var = "__t";
                 cc_body =
                   [ Ast.mk_stmt
                       (Ast.Expr_stmt
                          (Ast.fn_call "__mark"
                             [ cls_lit;
                               name_lit;
                               Ast.var "__snap";
                               Ast.this_e;
                               args_array params;
                               Ast.var "__t" ]));
                     Ast.mk_stmt (Ast.Throw (Ast.var "__t")) ] } ],
             None )) ]
  in
  { m with Ast.m_body = body }

(* The atomicity wrapper of Listing 2, as MiniLang source. *)
let masking_wrapper cls (m : Ast.meth_decl) : Ast.meth_decl =
  let id = Method_id.make cls m.Ast.m_name in
  let orig = mangle Masking id in
  let params = m.Ast.m_params in
  let body =
    [ Ast.mk_stmt
        (Ast.Var_decl
           ("__cp", Ast.fn_call "__checkpoint" [ Ast.this_e; args_array params ]));
      Ast.mk_stmt
        (Ast.Try
           ( [ Ast.mk_stmt
                 (Ast.Var_decl ("__r", Ast.call Ast.this_e orig (List.map Ast.var params)));
               Ast.mk_stmt (Ast.Expr_stmt (Ast.fn_call "__cpdrop" [ Ast.var "__cp" ]));
               Ast.mk_stmt (Ast.Return (Some (Ast.var "__r"))) ],
             [ { Ast.cc_class = "Throwable";
                 cc_var = "__t";
                 cc_body =
                   [ Ast.mk_stmt (Ast.Expr_stmt (Ast.fn_call "__restore" [ Ast.var "__cp" ]));
                     Ast.mk_stmt (Ast.Throw (Ast.var "__t")) ] } ],
             None )) ]
  in
  { m with Ast.m_body = body }

let weave_class kind ~selected (c : Ast.class_decl) : Ast.class_decl =
  let weave_method (m : Ast.meth_decl) =
    let id = Method_id.make c.Ast.c_name m.Ast.m_name in
    if not (selected id) then [ m ]
    else
      let renamed = { m with Ast.m_name = mangle kind id } in
      let wrapper =
        match kind with
        | Injection -> injection_wrapper c.Ast.c_name m
        | Masking -> masking_wrapper c.Ast.c_name m
      in
      [ renamed; wrapper ]
  in
  { c with Ast.c_methods = List.concat_map weave_method c.Ast.c_methods }

let weave kind ~selected (program : Ast.program) : Ast.program =
  List.map
    (fun decl ->
      match decl with
      | Ast.Class_decl c -> Ast.Class_decl (weave_class kind ~selected c)
      | Ast.Func_decl _ as d -> d)
    program

(* Weaves injection wrappers around every method of the program
   (detection phase, Steps 1-2 of Figure 1). *)
let weave_injection program = weave Injection ~selected:(fun _ -> true) program

(* Weaves atomicity wrappers around the given methods (masking phase,
   Steps 4-5 of Figure 1). *)
let weave_masking ~targets program =
  weave Masking ~selected:(fun id -> Method_id.Set.mem id targets) program
