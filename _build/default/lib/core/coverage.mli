(** Injection coverage reporting.

    Audits the paper's "one injection per reachable injection point"
    methodology: per used method, how many injections were sited in it
    and which of its injectable exception classes were exercised; plus
    the methods the test program never called — whose exception handling
    therefore remains untested (the blind spot the paper's §2 quotes
    Cristian on). *)

type method_coverage = {
  id : Method_id.t;
  calls : int;  (** dynamic calls in the baseline run *)
  injectable : string list;
  exercised : string list;  (** classes actually injected at this site *)
  sited_runs : int;
}

val ratio : method_coverage -> float
(** Exercised / injectable exception classes (1.0 when nothing is
    injectable). *)

type t = {
  methods : method_coverage list;  (** methods defined and used *)
  unused : Method_id.t list;  (** defined but never called *)
  total_runs : int;
  fully_covered : int;
}

val of_detection : Detect.result -> t
val pp : t Fmt.t
