(* Identity of a method: its defining class and its name.

   Dynamic dispatch always resolves a call to one defining class, so a
   method inherited by many subclasses is one method here — matching the
   paper's accounting, where reused methods are counted once per
   definition. *)

type t = { cls : string; name : string }

let make cls name = { cls; name }
let compare a b =
  match String.compare a.cls b.cls with
  | 0 -> String.compare a.name b.name
  | c -> c

let equal a b = compare a b = 0
let to_string { cls; name } = cls ^ "." ^ name
let pp ppf id = Fmt.string ppf (to_string id)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
