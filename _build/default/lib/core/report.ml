(* Rendering of experiment results: Table 1 and Figures 2-4 of the
   paper, as console tables/bars.  The benchmark harness prints these
   for every workload application. *)

type app_result = {
  app_name : string;
  language : string; (* "C++" or "Java": which paper suite it models *)
  flavor : Detect.flavor;
  classes : int;
  methods : int; (* methods defined and used *)
  injections : int;
  classification : Classify.t;
}

let of_detection ~app_name ~language (detection : Detect.result) classification =
  { app_name;
    language;
    flavor = detection.Detect.flavor;
    classes =
      (* classes defined and used *)
      List.length classification.Classify.class_verdicts;
    methods = Method_id.Map.cardinal classification.Classify.methods;
    injections = detection.Detect.injections;
    classification }

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let pp_table1 ppf (apps : app_result list) =
  Fmt.pf ppf "%-14s %-6s %9s %9s %12s@." "Application" "Suite" "#Classes" "#Methods"
    "#Injections";
  Fmt.pf ppf "%s@." (String.make 55 '-');
  List.iter
    (fun a ->
      Fmt.pf ppf "%-14s %-6s %9d %9d %12d@." a.app_name a.language a.classes a.methods
        a.injections)
    apps

(* ------------------------------------------------------------------ *)
(* Classification figures                                              *)
(* ------------------------------------------------------------------ *)

let pct part total = if total = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int total

let bar width p =
  let n = int_of_float (p *. float_of_int width /. 100.0) in
  String.make (max 0 (min width n)) '#'

(* One row of a Figure 2/3/4-style chart: three percentages plus a bar
   of the non-atomic share. *)
let pp_counts_row ppf name (c : Classify.counts) =
  let t = Classify.total c in
  let pa = pct c.Classify.atomic t
  and pc = pct c.Classify.conditional t
  and pp_ = pct c.Classify.pure t in
  Fmt.pf ppf "%-14s %7.1f%% %12.1f%% %7.1f%%  |%-20s|@." name pa pc pp_
    (bar 20 (pc +. pp_))

let pp_figure_header ppf title =
  Fmt.pf ppf "@.%s@.%s@." title (String.make (String.length title) '=');
  Fmt.pf ppf "%-14s %8s %13s %8s  %s@." "Application" "atomic" "conditional" "pure"
    "non-atomic share";
  Fmt.pf ppf "%s@." (String.make 70 '-')

(* Figures 2(a)/3(a): by methods defined and used. *)
let pp_figure_methods ppf ~title apps =
  pp_figure_header ppf title;
  List.iter
    (fun a -> pp_counts_row ppf a.app_name (Classify.method_counts a.classification))
    apps

(* Figures 2(b)/3(b): weighted by number of calls. *)
let pp_figure_calls ppf ~title apps =
  pp_figure_header ppf title;
  List.iter
    (fun a -> pp_counts_row ppf a.app_name (Classify.call_counts a.classification))
    apps

(* Figure 4: by classes defined and used. *)
let pp_figure_classes ppf ~title apps =
  pp_figure_header ppf title;
  List.iter
    (fun a -> pp_counts_row ppf a.app_name (Classify.class_counts a.classification))
    apps

(* ------------------------------------------------------------------ *)
(* Per-method detail (what the paper's web interface shows)            *)
(* ------------------------------------------------------------------ *)

let pp_method_report ppf (r : Classify.method_report) =
  Fmt.pf ppf "%-36s %-22s calls=%-6d na-marks=%-4d%a@."
    (Method_id.to_string r.Classify.id)
    (Classify.verdict_name r.Classify.verdict)
    r.Classify.calls r.Classify.non_atomic_marks
    Fmt.(option (fun ppf d -> pf ppf " diff@@%s" d))
    r.Classify.sample_diff

let pp_details ppf (c : Classify.t) =
  let reports = Classify.reports c in
  let interesting =
    List.filter (fun r -> r.Classify.verdict <> Classify.Atomic) reports
  in
  Fmt.pf ppf "%d method(s) defined and used, %d failure non-atomic:@."
    (List.length reports) (List.length interesting);
  List.iter (pp_method_report ppf) interesting

(* ------------------------------------------------------------------ *)
(* Machine-readable export                                             *)
(* ------------------------------------------------------------------ *)

(* CSV of the per-method classification, one row per method defined and
   used; consumable by spreadsheet tooling the way the paper's web
   interface consumed the wrapper logs. *)
let classification_to_csv (c : Classify.t) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "class,method,verdict,calls,non_atomic_marks,atomic_marks,diff_path\n";
  List.iter
    (fun (r : Classify.method_report) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%s,%d,%d,%d,%s\n" r.Classify.id.Method_id.cls
           r.Classify.id.Method_id.name
           (match r.Classify.verdict with
            | Classify.Atomic -> "atomic"
            | Classify.Conditional_non_atomic -> "conditional"
            | Classify.Pure_non_atomic -> "pure")
           r.Classify.calls r.Classify.non_atomic_marks r.Classify.atomic_marks
           (Option.value ~default:"" r.Classify.sample_diff)))
    (Classify.reports c);
  Buffer.contents buf

(* CSV of Table 1 plus the three classification distributions. *)
let table1_to_csv (apps : app_result list) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "application,suite,classes,methods,injections,pure_methods,conditional_methods,atomic_methods,pure_call_pct\n";
  List.iter
    (fun a ->
      let m = Classify.method_counts a.classification in
      let calls = Classify.call_counts a.classification in
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%d,%d,%d,%d,%d,%d,%.2f\n" a.app_name a.language a.classes
           a.methods a.injections m.Classify.pure m.Classify.conditional
           m.Classify.atomic
           (pct calls.Classify.pure (Classify.total calls))))
    apps;
  Buffer.contents buf
