lib/core/mask.mli: Ast Classify Config Detect Failatom_minilang Failatom_runtime Method_id Vm
