lib/core/mask.ml: Array Ast Checkpoint Classify Compile Config Detect Failatom_minilang Failatom_runtime Hashtbl Heap List Method_id Printf Source_weaver Value Vm
