lib/core/report.mli: Classify Detect Format
