lib/core/run_log.mli: Classify Detect Marks Method_id
