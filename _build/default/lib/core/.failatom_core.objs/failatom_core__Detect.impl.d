lib/core/detect.ml: Analyzer Ast Compile Config Failatom_minilang Failatom_runtime Fmt Injection List Marks Printf Profile Source_weaver String Vm
