lib/core/analyzer.mli: Ast Config Failatom_minilang Method_id
