lib/core/marks.ml: Fmt Method_id
