lib/core/source_weaver.mli: Ast Failatom_minilang Method_id
