lib/core/profile.mli: Ast Failatom_minilang Failatom_runtime Method_id Value Vm
