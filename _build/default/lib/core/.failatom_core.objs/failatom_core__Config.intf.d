lib/core/config.mli: Checkpoint Failatom_runtime Method_id
