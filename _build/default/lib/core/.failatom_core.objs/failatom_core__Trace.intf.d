lib/core/trace.mli: Failatom_minilang Failatom_runtime Fmt Method_id Vm
