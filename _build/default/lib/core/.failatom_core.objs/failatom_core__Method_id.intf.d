lib/core/method_id.mli: Fmt Map Set
