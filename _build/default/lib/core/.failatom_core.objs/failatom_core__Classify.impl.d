lib/core/classify.ml: Analyzer Detect Hashtbl List Marks Method_id Option Profile
