lib/core/marks.mli: Fmt Method_id
