lib/core/run_log.ml: Buffer Classify Detect Fun List Marks Method_id Printf Profile String
