lib/core/injection.mli: Analyzer Config Failatom_runtime Hashtbl Marks Method_id Object_graph Vm
