lib/core/classify.mli: Detect Marks Method_id
