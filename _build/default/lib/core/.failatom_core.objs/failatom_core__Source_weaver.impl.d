lib/core/source_weaver.ml: Ast Failatom_minilang List Method_id Printf String
