lib/core/detect.mli: Analyzer Ast Config Failatom_minilang Failatom_runtime Marks Profile Vm
