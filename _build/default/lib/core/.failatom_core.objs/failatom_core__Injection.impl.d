lib/core/injection.ml: Analyzer Array Config Failatom_runtime Hashtbl Heap List Marks Method_id Object_graph Option Printf String Value Vm
