lib/core/coverage.ml: Analyzer Detect Fmt Hashtbl List Marks Method_id Option Profile String
