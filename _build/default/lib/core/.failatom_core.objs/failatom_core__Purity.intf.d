lib/core/purity.mli: Ast Failatom_minilang Method_id
