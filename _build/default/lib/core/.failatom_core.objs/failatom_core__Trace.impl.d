lib/core/trace.ml: Failatom_minilang Failatom_runtime Fmt Heap List Method_id Object_graph Option Printf String Value Vm
