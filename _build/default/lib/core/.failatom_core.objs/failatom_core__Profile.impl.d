lib/core/profile.ml: Ast Compile Failatom_minilang Failatom_runtime Hashtbl List Method_id Option Value Vm
