lib/core/config.ml: Checkpoint Failatom_runtime List Method_id
