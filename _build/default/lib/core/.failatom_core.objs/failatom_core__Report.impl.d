lib/core/report.ml: Buffer Classify Detect Fmt List Method_id Option Printf String
