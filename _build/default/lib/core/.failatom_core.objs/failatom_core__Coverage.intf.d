lib/core/coverage.mli: Detect Fmt Method_id
