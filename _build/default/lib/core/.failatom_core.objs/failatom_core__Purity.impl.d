lib/core/purity.ml: Ast Builtins Failatom_minilang Hashtbl List Method_id Option String
