lib/core/method_id.ml: Fmt Map Set String
