lib/core/analyzer.ml: Ast Config Failatom_minilang List Method_id Purity
