(** Source-code weaving (paper §5.1, the AspectC++/CINT path).

    Rewrites the program text itself: every selected method [m] of class
    [C] is renamed to a mangled name and a wrapper method with the
    original name is spliced into the class, so all existing call sites
    reach the wrapper untouched.  Wrapper bodies call the engine through
    reflective ["__"] hooks; the woven program is ordinary MiniLang and
    can be pretty-printed for inspection.

    The mangled name carries the defining class ([__orig__C__m]) so that
    a wrapper inherited by a subclass still reaches {e its own} class's
    original implementation even when the subclass overrides [m]. *)

open Failatom_minilang

type kind =
  | Injection  (** detection-phase wrappers (Listing 1) *)
  | Masking  (** atomicity wrappers (Listing 2) *)

val mangle : kind -> Method_id.t -> string
(** [__orig__C__m] or [__msk__C__m]. *)

val demangle : string -> Method_id.t option
(** Recovers the original method id from a mangled name, if it is one. *)

val weave_injection : Ast.program -> Ast.program
(** The exception injector program P_I: injection wrappers around every
    method (Steps 1–2 of the paper's Figure 1).  Requires
    {!Injection.register_hooks} on the VM before running. *)

val weave_masking : targets:Method_id.Set.t -> Ast.program -> Ast.program
(** The corrected program P_C: atomicity wrappers around the given
    methods (Steps 4–5 of Figure 1).  Requires {!Mask.register_hooks}
    on the VM before running. *)
