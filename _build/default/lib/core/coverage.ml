(* Injection coverage reporting.

   The paper's methodology promises one injection per reachable
   injection point; this module makes that auditable: for every method,
   how many injections were sited in it, which of its injectable
   exception classes were actually exercised, and — just as important —
   which methods the test program never called at all (their exception
   handling remains untested, the blind spot §2 warns about: "testing
   typically results in less coverage for the exception handling code
   than for the functional code"). *)

type method_coverage = {
  id : Method_id.t;
  calls : int; (* dynamic calls in the baseline run *)
  injectable : string list; (* exception classes the wrapper can throw *)
  exercised : string list; (* classes actually injected at this site *)
  sited_runs : int; (* number of runs whose injection was sited here *)
}

(* A method's site coverage: exercised / injectable exception classes. *)
let ratio (mc : method_coverage) =
  if mc.injectable = [] then 1.0
  else float_of_int (List.length mc.exercised) /. float_of_int (List.length mc.injectable)

type t = {
  methods : method_coverage list; (* methods defined and used *)
  unused : Method_id.t list; (* defined but never called: untested *)
  total_runs : int;
  fully_covered : int; (* used methods with every injectable class exercised *)
}

let of_detection (d : Detect.result) : t =
  let sites : (Method_id.t, string list ref) Hashtbl.t = Hashtbl.create 64 in
  let sited_counts : (Method_id.t, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (r : Marks.run_record) ->
      match r.Marks.injected with
      | Some (site, exn_class) ->
        Hashtbl.replace sited_counts site
          (1 + Option.value ~default:0 (Hashtbl.find_opt sited_counts site));
        let cell =
          match Hashtbl.find_opt sites site with
          | Some cell -> cell
          | None ->
            let cell = ref [] in
            Hashtbl.replace sites site cell;
            cell
        in
        if not (List.mem exn_class !cell) then cell := exn_class :: !cell
      | None -> ())
    d.Detect.runs;
  let used = Profile.used_methods d.Detect.profile in
  let methods =
    List.map
      (fun id ->
        let injectable = Analyzer.injectable_for d.Detect.analyzer id in
        let exercised =
          match Hashtbl.find_opt sites id with
          | Some cell -> List.sort String.compare !cell
          | None -> []
        in
        { id;
          calls = Profile.call_count d.Detect.profile id;
          injectable;
          exercised;
          sited_runs = Option.value ~default:0 (Hashtbl.find_opt sited_counts id) })
      used
  in
  let used_set = Method_id.Set.of_list used in
  let unused =
    List.filter
      (fun id -> not (Method_id.Set.mem id used_set))
      (Analyzer.method_ids d.Detect.analyzer)
  in
  { methods;
    unused;
    total_runs = d.Detect.injections;
    fully_covered =
      List.length
        (List.filter
           (fun mc -> List.length mc.exercised = List.length mc.injectable)
           methods) }

let pp ppf (t : t) =
  Fmt.pf ppf "%d injection runs; %d/%d used methods fully covered@." t.total_runs
    t.fully_covered (List.length t.methods);
  List.iter
    (fun mc ->
      Fmt.pf ppf "  %-36s calls=%-5d sited=%-5d classes %d/%d (%.0f%%)@."
        (Method_id.to_string mc.id) mc.calls mc.sited_runs
        (List.length mc.exercised)
        (List.length mc.injectable)
        (100.0 *. ratio mc))
    t.methods;
  match t.unused with
  | [] -> ()
  | unused ->
    Fmt.pf ppf "NEVER CALLED (exception handling untested):@.";
    List.iter (fun id -> Fmt.pf ppf "  %s@." (Method_id.to_string id)) unused
