(** Rendering of experiment results: Table 1 and Figures 2–4 of the
    paper, as console tables and bar charts. *)

type app_result = {
  app_name : string;
  language : string;  (** "C++" or "Java": which paper suite it models *)
  flavor : Detect.flavor;
  classes : int;  (** classes defined and used *)
  methods : int;  (** methods defined and used *)
  injections : int;
  classification : Classify.t;
}

val of_detection :
  app_name:string -> language:string -> Detect.result -> Classify.t -> app_result

val pct : int -> int -> float
(** [pct part total] in percent; 0 when [total] is 0. *)

val bar : int -> float -> string
(** [bar width percent] is an ASCII bar, clamped to [width]. *)

val pp_table1 : Format.formatter -> app_result list -> unit
val pp_figure_methods : Format.formatter -> title:string -> app_result list -> unit
val pp_figure_calls : Format.formatter -> title:string -> app_result list -> unit
val pp_figure_classes : Format.formatter -> title:string -> app_result list -> unit

val pp_method_report : Format.formatter -> Classify.method_report -> unit

val pp_details : Format.formatter -> Classify.t -> unit
(** The per-method detail view (what the paper's web interface shows):
    every non-atomic method with verdict, call count and diff path. *)

val classification_to_csv : Classify.t -> string
(** CSV export of the per-method classification (one row per method
    defined and used). *)

val table1_to_csv : app_result list -> string
(** CSV export of the per-application statistics. *)
