(** Call tracing over the filter substrate.

    Records the dynamic call tree of a run — method entries with
    rendered receiver/arguments, exits with result or exception — using
    the same pre/post interposition the injector and masker use.
    Events are ordered by {e completion} (a callee's exit precedes its
    caller's), matching the order in which atomicity marks are
    emitted. *)

open Failatom_runtime

type outcome =
  | Returned of string  (** rendered result *)
  | Raised of string  (** exception class *)

type event = {
  depth : int;
  meth : Method_id.t;
  receiver : string;  (** rendered as Class#graph-size *)
  arguments : string list;
  outcome : outcome;
}

type t

val create : ?max_events:int -> unit -> t
val events : t -> event list
val filter : t -> Vm.filter
val attach : t -> Vm.t -> unit

val pp_event : event Fmt.t
val pp : t Fmt.t

val run_traced :
  Failatom_minilang.Ast.program -> t * string * string option
(** Runs the program once under tracing; returns the trace, the
    program's output, and the class of an escaped exception if any. *)
