(** Identity of a method: its defining class and its name.

    Dynamic dispatch resolves every call to one defining class, so a
    method inherited by many subclasses is a single method here —
    matching the paper's accounting of methods "defined and used". *)

type t = { cls : string; name : string }

val make : string -> string -> t
val compare : t -> t -> int
val equal : t -> t -> bool

val to_string : t -> string
(** ["Cls.meth"]. *)

val pp : t Fmt.t

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
