(* Dynamic values manipulated by the simulated object runtime.

   Primitive values are immutable and carried inline; objects and arrays
   live on the simulated {!Heap.t} and are designated by their identity
   [Ref id].  This mirrors the reference semantics of the Java/C++
   programs instrumented by the paper: aliasing is observable, which is
   what makes object-graph comparison (Definition 1) meaningful. *)

type obj_id = int

type t =
  | Int of int
  | Bool of bool
  | Str of string
  | Null
  | Ref of obj_id

let is_ref = function Ref _ -> true | Int _ | Bool _ | Str _ | Null -> false

let type_name = function
  | Int _ -> "int"
  | Bool _ -> "bool"
  | Str _ -> "string"
  | Null -> "null"
  | Ref _ -> "object"

let truthy = function
  | Bool b -> b
  | Int n -> n <> 0
  | Null -> false
  | Str _ | Ref _ -> true

(* Shallow equality: two references are equal iff they denote the same
   heap object.  Deep (graph) equality lives in {!Object_graph}. *)
let equal a b =
  match a, b with
  | Int x, Int y -> x = y
  | Bool x, Bool y -> x = y
  | Str x, Str y -> String.equal x y
  | Null, Null -> true
  | Ref x, Ref y -> x = y
  | (Int _ | Bool _ | Str _ | Null | Ref _), _ -> false

let pp ppf = function
  | Int n -> Fmt.int ppf n
  | Bool b -> Fmt.bool ppf b
  | Str s -> Fmt.pf ppf "%S" s
  | Null -> Fmt.string ppf "null"
  | Ref id -> Fmt.pf ppf "#%d" id

let to_string v = Fmt.str "%a" pp v

(* Rendering used by the [print]/[str] builtins: strings are unquoted. *)
let to_display_string = function
  | Str s -> s
  | (Int _ | Bool _ | Null | Ref _) as v -> to_string v
