(** Dynamic values of the simulated object runtime.

    Primitive values are immutable and carried inline; objects and
    arrays live on a {!Heap.t} and are designated by their identity
    ([Ref id]), giving the reference semantics of the Java/C++ programs
    the paper instruments: aliasing is observable, which is what makes
    object-graph comparison (paper Definition 1) meaningful. *)

type obj_id = int
(** Identity of a heap object. *)

type t =
  | Int of int
  | Bool of bool
  | Str of string
  | Null
  | Ref of obj_id  (** reference to a heap object or array *)

val is_ref : t -> bool
(** [is_ref v] is [true] iff [v] designates a heap object. *)

val type_name : t -> string
(** Human-readable name of the value's dynamic type. *)

val truthy : t -> bool
(** Condition semantics: [false], [0] and [null] are false; everything
    else is true. *)

val equal : t -> t -> bool
(** Shallow equality: references are equal iff they denote the same heap
    object.  Deep (graph) equality lives in {!Object_graph}. *)

val pp : t Fmt.t
(** Debug printer; strings are quoted, references print as [#id]. *)

val to_string : t -> string
(** [to_string v] is [Fmt.str "%a" pp v]. *)

val to_display_string : t -> string
(** Rendering used by the [print]/[str] builtins: strings unquoted. *)
