(* Object graphs (paper Definition 1) and their comparison.

   The object graph of a value [v] is the rooted graph of all objects,
   arrays and primitive values reachable from [v] through instance
   variables and array slots.  Sharing matters: two pointers to the same
   object must remain pointers to one shared node.

   We represent an object graph by a *canonical form*: a finite tree in
   which each heap object is expanded at its first visit (in a
   deterministic traversal order: fields sorted by name, array slots in
   index order) and every later occurrence becomes a back-reference
   [Back idx] to the first-visit index.  Two rooted graphs are identical
   in the sense of Definition 1 iff their canonical forms are equal, so
   graph comparison reduces to structural equality of trees — including
   for cyclic graphs, whose cycles always close through a [Back]. *)

type node =
  | Int of int
  | Bool of bool
  | Str of string
  | Null
  | Obj of { idx : int; cls : string; fields : (string * node) list }
  | Arr of { idx : int; elems : node list }
  | Back of int

let rec pp_node ppf = function
  | Int n -> Fmt.int ppf n
  | Bool b -> Fmt.bool ppf b
  | Str s -> Fmt.pf ppf "%S" s
  | Null -> Fmt.string ppf "null"
  | Back i -> Fmt.pf ppf "^%d" i
  | Obj { idx; cls; fields } ->
    let pp_field ppf (name, n) = Fmt.pf ppf "%s=%a" name pp_node n in
    Fmt.pf ppf "@[<hv 2>%s@%d{%a}@]" cls idx (Fmt.list ~sep:Fmt.comma pp_field) fields
  | Arr { idx; elems } ->
    Fmt.pf ppf "@[<hv 2>arr@%d[%a]@]" idx (Fmt.list ~sep:Fmt.semi pp_node) elems

(* Canonical form of the object graph rooted at [v]. *)
let canonical heap v =
  let visited : (Value.obj_id, int) Hashtbl.t = Hashtbl.create 64 in
  let counter = ref 0 in
  let rec node v =
    match (v : Value.t) with
    | Value.Int n -> Int n
    | Value.Bool b -> Bool b
    | Value.Str s -> Str s
    | Value.Null -> Null
    | Value.Ref id -> (
      match Hashtbl.find_opt visited id with
      | Some idx -> Back idx
      | None ->
        let idx = !counter in
        incr counter;
        Hashtbl.replace visited id idx;
        (match Heap.get heap id with
         | Heap.Obj { cls; fields } ->
           let names =
             List.sort String.compare
               (Hashtbl.fold (fun k _ acc -> k :: acc) fields [])
           in
           let entries =
             List.map (fun name -> (name, node (Hashtbl.find fields name))) names
           in
           Obj { idx; cls; fields = entries }
         | Heap.Arr a -> Arr { idx; elems = Array.to_list (Array.map node a) }))
  in
  node v

(* Canonical form covering several roots at once (the receiver plus the
   by-reference arguments of a call): sharing *across* roots is captured
   because the visit table is common to all of them. *)
let canonical_many heap vs =
  (* Wrapping the roots in a synthetic array node reuses [canonical]'s
     single-root traversal while sharing one visit table. *)
  let id = Heap.alloc heap (Heap.Arr (Array.of_list vs)) in
  let result = canonical heap (Value.Ref id) in
  Heap.free heap id;
  result

let equal (a : node) (b : node) = a = b
let hash (n : node) = Hashtbl.hash n
let to_string n = Fmt.str "%a" pp_node n

(* First path (root-to-leaf field trail) at which two canonical forms
   differ, if any.  Used in detection reports so the user can see *where*
   a method left the receiver inconsistent. *)
let diff a b =
  let exception Found of string in
  let rec walk path a b =
    match a, b with
    | Int x, Int y -> if x <> y then raise (Found path)
    | Bool x, Bool y -> if x <> y then raise (Found path)
    | Str x, Str y -> if not (String.equal x y) then raise (Found path)
    | Null, Null -> ()
    | Back x, Back y -> if x <> y then raise (Found path)
    | Obj oa, Obj ob ->
      if not (String.equal oa.cls ob.cls) then raise (Found path)
      else walk_fields path oa.fields ob.fields
    | Arr aa, Arr ab ->
      if List.length aa.elems <> List.length ab.elems then raise (Found path)
      else
        List.iteri
          (fun i (x, y) -> walk (Printf.sprintf "%s[%d]" path i) x y)
          (List.combine aa.elems ab.elems)
    | (Int _ | Bool _ | Str _ | Null | Obj _ | Arr _ | Back _), _ ->
      raise (Found path)
  and walk_fields path fa fb =
    match fa, fb with
    | [], [] -> ()
    | (na, va) :: ra, (nb, vb) :: rb ->
      if not (String.equal na nb) then raise (Found path)
      else begin
        walk (path ^ "." ^ na) va vb;
        walk_fields path ra rb
      end
    | _ :: _, [] | [], _ :: _ -> raise (Found path)
  in
  try
    walk "this" a b;
    None
  with Found p -> Some p

(* Deep copy of the graph rooted at [v], preserving sharing and cycles:
   the result references freshly allocated objects only.  This is the
   paper's [deep_copy]. *)
let clone heap v =
  let mapping : (Value.obj_id, Value.obj_id) Hashtbl.t = Hashtbl.create 64 in
  let rec copy v =
    match (v : Value.t) with
    | Value.Int _ | Value.Bool _ | Value.Str _ | Value.Null -> v
    | Value.Ref id -> (
      match Hashtbl.find_opt mapping id with
      | Some fresh -> Value.Ref fresh
      | None ->
        (* Allocate the copy first so cycles map back to it. *)
        let fresh =
          match Heap.get heap id with
          | Heap.Obj { cls; _ } ->
            Heap.alloc heap (Heap.Obj { cls; fields = Hashtbl.create 8 })
          | Heap.Arr a ->
            Heap.alloc heap (Heap.Arr (Array.make (Array.length a) Value.Null))
        in
        Hashtbl.replace mapping id fresh;
        (match Heap.get heap id, Heap.get heap fresh with
         | Heap.Obj { fields; _ }, Heap.Obj { fields = fresh_fields; _ } ->
           Hashtbl.iter (fun k v -> Hashtbl.replace fresh_fields k (copy v)) fields
         | Heap.Arr a, Heap.Arr fresh_a ->
           Array.iteri (fun i v -> fresh_a.(i) <- copy v) a
         | (Heap.Obj _ | Heap.Arr _), _ -> assert false);
        Value.Ref fresh)
  in
  copy v

(* Number of heap objects in the graph rooted at [v] (checkpoint size
   metric used by the Figure 5 benchmarks). *)
let size heap v =
  let visited = Hashtbl.create 64 in
  let rec visit v =
    match (v : Value.t) with
    | Value.Int _ | Value.Bool _ | Value.Str _ | Value.Null -> ()
    | Value.Ref id ->
      if not (Hashtbl.mem visited id) then begin
        Hashtbl.replace visited id ();
        List.iter (fun r -> visit (Value.Ref r)) (Heap.successors heap id)
      end
  in
  visit v;
  Hashtbl.length visited
