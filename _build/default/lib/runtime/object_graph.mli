(** Object graphs (paper Definition 1) and their comparison.

    The object graph of a value [v] is the rooted graph of all objects,
    arrays and primitive values reachable from [v] through instance
    variables and array slots, with sharing preserved: two pointers to
    the same object remain pointers to one shared node.

    Graphs are represented by a {e canonical form}: a finite tree in
    which each heap object is expanded at its first visit (fields sorted
    by name, array slots in index order) and later occurrences become
    back-references to the first-visit index.  Two rooted graphs are
    identical in the sense of Definition 1 iff their canonical forms are
    structurally equal — including cyclic graphs, whose cycles close
    through a [Back] node. *)

type node =
  | Int of int
  | Bool of bool
  | Str of string
  | Null
  | Obj of { idx : int; cls : string; fields : (string * node) list }
  | Arr of { idx : int; elems : node list }
  | Back of int  (** reference to an already-visited object *)

val pp_node : node Fmt.t

val canonical : Heap.t -> Value.t -> node
(** Canonical form of the object graph rooted at the given value. *)

val canonical_many : Heap.t -> Value.t list -> node
(** Canonical form covering several roots at once (e.g. the receiver
    plus the by-reference arguments of a call); sharing across roots is
    captured because the visit table is common to all of them. *)

val equal : node -> node -> bool
(** Object-graph identity per Definition 1. *)

val hash : node -> int

val to_string : node -> string

val diff : node -> node -> string option
(** First root-to-leaf field path at which two canonical forms differ,
    e.g. ["this.head.next.value"]; [None] when equal.  Shown in
    detection reports so users can see {e where} a method left the
    receiver inconsistent. *)

val clone : Heap.t -> Value.t -> Value.t
(** Deep copy of the graph, preserving sharing and cycles; the result
    references freshly allocated objects only.  This is the paper's
    [deep_copy]. *)

val size : Heap.t -> Value.t -> int
(** Number of heap objects in the graph (the checkpoint-size metric of
    the Figure 5 benchmarks). *)
