(** Mark–sweep collection of the simulated heap.

    The paper cleans up objects discarded by a rollback with reference
    counting, falling back to an off-the-shelf collector for cyclic
    structures; a tracing collector subsumes both.  Roots are the VM's
    globals, the values of every live interpreter frame, and any extra
    roots supplied by the caller (e.g. a checkpoint being held). *)

val collect : ?extra_roots:Value.t list -> Vm.t -> int
(** Frees every unreachable heap object; returns how many were freed. *)
