lib/runtime/heap.mli: Hashtbl Value
