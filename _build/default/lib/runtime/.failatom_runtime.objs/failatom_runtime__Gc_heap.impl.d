lib/runtime/gc_heap.ml: Hashtbl Heap List Value Vm
