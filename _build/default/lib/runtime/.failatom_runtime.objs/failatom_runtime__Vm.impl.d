lib/runtime/vm.ml: Buffer Hashtbl Heap List Option Printf String Value
