lib/runtime/vm.mli: Buffer Hashtbl Heap Value
