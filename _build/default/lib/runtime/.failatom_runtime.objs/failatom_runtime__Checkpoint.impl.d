lib/runtime/checkpoint.ml: Fun Hashtbl Heap List Value
