lib/runtime/object_graph.mli: Fmt Heap Value
