lib/runtime/checkpoint.mli: Heap Value
