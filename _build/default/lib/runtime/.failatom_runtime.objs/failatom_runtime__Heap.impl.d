lib/runtime/heap.ml: Array Hashtbl List String Value
