lib/runtime/gc_heap.mli: Value Vm
