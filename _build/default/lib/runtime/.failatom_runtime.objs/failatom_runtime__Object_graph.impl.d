lib/runtime/object_graph.ml: Array Fmt Hashtbl Heap List Printf String Value
