(** Growable array with a sorted subclass (Java suite).

    One of the paper's Table-1 workload applications, re-implemented in
    MiniLang with an equivalent structure and a deterministic driver. *)

val name : string
val source : string
(** The full MiniLang program, including its [main] driver. *)
