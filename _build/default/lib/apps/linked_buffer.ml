(* LinkedBuffer workload (Java suite): a buffer made of linked
   fixed-size chunks, modelled on the Doug Lea collections
   LinkedBuffer; items are appended at the tail chunk and taken from
   the head chunk. *)

let name = "LinkedBuffer"

let source =
  Fragments.collections_base
  ^ {|
class Chunk {
  field slots;
  field used;
  field start;
  field next;
  method init(capacity) throws NegativeArraySizeException {
    this.slots = newArray(capacity);
    this.used = 0;
    this.start = 0;
    this.next = null;
    return this;
  }
  method isFull() { return this.used == len(this.slots); }
  method isDrained() { return this.start == this.used; }
}

class LinkedBuffer extends AbstractContainer {
  field head;
  field tail;
  field chunkCapacity;
  field chunkCount;
  method init(chunkCapacity) throws NegativeArraySizeException, OutOfMemoryError {
    super.init();
    this.chunkCapacity = chunkCapacity;
    this.head = new Chunk(chunkCapacity);
    this.tail = this.head;
    this.chunkCount = 1;
    return this;
  }
  // Pure failure non-atomic on the chunk-boundary path: the element
  // count moves before the new chunk is allocated.
  method append(v) throws OutOfMemoryError, NegativeArraySizeException {
    this.size = this.size + 1;
    if (this.tail.isFull()) {
      var chunk = new Chunk(this.chunkCapacity);
      this.tail.next = chunk;
      this.tail = chunk;
      this.chunkCount = this.chunkCount + 1;
      // a fully drained head can now be retired (it could not be while
      // it was also the tail)
      if (this.head.isDrained() && this.head.next != null) {
        this.head = this.head.next;
        this.chunkCount = this.chunkCount - 1;
      }
    }
    this.tail.slots[this.tail.used] = v;
    this.tail.used = this.tail.used + 1;
    return null;
  }
  // Pure failure non-atomic: element-by-element bulk append.
  method appendAll(values) throws OutOfMemoryError, NegativeArraySizeException {
    for (var i = 0; i < len(values); i = i + 1) {
      this.append(values[i]);
    }
    return null;
  }
  // Failure atomic: validate, read, then commit.
  method take() throws NoSuchElementException {
    this.requirePresent(this.size > 0, "take on empty buffer");
    var chunk = this.head;
    var v = chunk.slots[chunk.start];
    chunk.slots[chunk.start] = null;
    chunk.start = chunk.start + 1;
    this.size = this.size - 1;
    if (chunk.isDrained() && chunk.next != null) {
      this.head = chunk.next;
      this.chunkCount = this.chunkCount - 1;
    }
    return v;
  }
  method peek() throws NoSuchElementException {
    this.requirePresent(this.size > 0, "peek on empty buffer");
    return this.head.slots[this.head.start];
  }
  // Pure failure non-atomic: drains element by element.
  method drain(n) throws NoSuchElementException {
    var out = newArray(n);
    for (var i = 0; i < n; i = i + 1) {
      out[i] = this.take();
    }
    return out;
  }
  method chunks() { return this.chunkCount; }
}

function main() {
  var buf = new LinkedBuffer(4);
  for (var i = 0; i < 10; i = i + 1) { buf.append(i); }
  check(buf.count() == 10, "count");
  check(buf.chunks() == 3, "three chunks");
  check(buf.peek() == 0, "peek");
  check(buf.take() == 0, "take fifo");
  check(buf.take() == 1, "take fifo 2");
  var got = buf.drain(5);
  check(len(got) == 5, "drain length");
  check(got[0] == 2 && got[4] == 6, "drain order");
  check(buf.count() == 3, "count after drain");
  var polls = 0;
  for (var round = 0; round < 10; round = round + 1) {
    if (buf.peek() == 7) { polls = polls + 1; }
    if (buf.chunks() > 0) { polls = polls + 1; }
    if (!buf.isEmpty()) { polls = polls + 1; }
  }
  check(polls == 30, "polling reads");
  buf.appendAll([100, 200, 300]);
  check(buf.count() == 6, "count after appendAll");
  try {
    buf.drain(99);
  } catch (NoSuchElementException e) {
    println("drain overrun: " + e.message);
  }
  check(buf.isEmpty(), "drained dry by failed drain");
  var empty = new LinkedBuffer(2);
  try {
    empty.peek();
  } catch (NoSuchElementException e) {
    println("peek empty: " + e.message);
  }
  println("final=" + buf.count() + "/" + buf.chunks());
  return 0;
}
|}
