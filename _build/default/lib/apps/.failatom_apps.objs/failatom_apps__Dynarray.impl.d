lib/apps/dynarray.ml: Fragments
