lib/apps/hashed_map.ml: Fragments
