lib/apps/hashed_set.ml: Hashed_map
