lib/apps/registry.ml: Adaptor_chain Circular_list Dynarray Hashed_map Hashed_set Linked_buffer Linked_list List Ll_map Rb_map Rb_tree Reg_exp Std_q String Xml2ctcp Xml2cviasc Xml2xml
