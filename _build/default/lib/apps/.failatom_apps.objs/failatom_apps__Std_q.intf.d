lib/apps/std_q.mli:
