lib/apps/circular_list.mli:
