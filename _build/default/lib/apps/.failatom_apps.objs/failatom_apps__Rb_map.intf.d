lib/apps/rb_map.mli:
