lib/apps/rb_tree.mli:
