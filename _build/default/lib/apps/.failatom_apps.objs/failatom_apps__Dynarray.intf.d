lib/apps/dynarray.mli:
