lib/apps/linked_list.ml: Fragments
