lib/apps/std_q.ml: Fragments
