lib/apps/synthetic.ml: Classify Failatom_core Method_id Registry
