lib/apps/reg_exp.mli:
