lib/apps/xml2ctcp.mli:
