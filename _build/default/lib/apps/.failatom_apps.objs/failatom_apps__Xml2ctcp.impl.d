lib/apps/xml2ctcp.ml: Fragments
