lib/apps/harness.ml: Classify Config Detect Failatom_core Failatom_minilang Registry Report
