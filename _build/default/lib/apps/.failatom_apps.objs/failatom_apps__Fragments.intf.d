lib/apps/fragments.mli:
