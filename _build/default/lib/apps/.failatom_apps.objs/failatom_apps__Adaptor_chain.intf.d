lib/apps/adaptor_chain.mli:
