lib/apps/hashed_map.mli:
