lib/apps/harness.mli: Classify Config Detect Failatom_core Registry Report
