lib/apps/ll_map.ml: Fragments
