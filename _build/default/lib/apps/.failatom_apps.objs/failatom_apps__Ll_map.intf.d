lib/apps/ll_map.mli:
