lib/apps/xml2cviasc.mli:
