lib/apps/xml2xml.ml: Fragments
