lib/apps/rb_tree.ml: Fragments
