lib/apps/rb_map.ml: Fragments
