lib/apps/xml2cviasc.ml: Fragments
