lib/apps/linked_buffer.ml: Fragments
