lib/apps/adaptor_chain.ml: Fragments
