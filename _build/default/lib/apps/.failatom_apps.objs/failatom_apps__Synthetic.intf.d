lib/apps/synthetic.mli: Classify Failatom_core Method_id Registry
