lib/apps/linked_buffer.mli:
