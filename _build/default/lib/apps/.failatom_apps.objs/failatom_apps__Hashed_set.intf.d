lib/apps/hashed_set.mli:
