lib/apps/reg_exp.ml:
