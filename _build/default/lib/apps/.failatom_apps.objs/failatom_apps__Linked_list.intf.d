lib/apps/linked_list.mli:
