lib/apps/registry.mli:
