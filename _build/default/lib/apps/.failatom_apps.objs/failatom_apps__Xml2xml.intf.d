lib/apps/xml2xml.mli:
