lib/apps/circular_list.ml: Fragments
