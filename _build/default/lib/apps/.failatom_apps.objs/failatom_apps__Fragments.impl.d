lib/apps/fragments.ml:
