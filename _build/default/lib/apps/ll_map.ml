(* LLMap workload (Java suite): an association-list map in the style of
   the Doug Lea collections LLMap, with move-to-front on lookup. *)

let name = "LLMap"

let source =
  Fragments.collections_base
  ^ {|
class LLEntry {
  field key;
  field value;
  field next;
  method init(k, v) {
    this.key = k;
    this.value = v;
    this.next = null;
    return this;
  }
}

class LLMap extends AbstractContainer {
  field entries;
  field hits;
  method init() {
    super.init();
    this.entries = null;
    this.hits = 0;
    return this;
  }
  method findEntry(k) {
    var e = this.entries;
    while (e != null) {
      if (e.key == k) { return e; }
      e = e.next;
    }
    return null;
  }
  // Failure atomic: allocate first, then link and count.
  method put(k, v) throws OutOfMemoryError {
    var existing = this.findEntry(k);
    if (existing != null) {
      var old = existing.value;
      existing.value = v;
      return old;
    }
    var entry = new LLEntry(k, v);
    entry.next = this.entries;
    this.entries = entry;
    this.size = this.size + 1;
    return null;
  }
  // Pure failure non-atomic: the hit counter and the move-to-front
  // relinking are committed before the presence check can throw.
  method get(k) throws NoSuchElementException {
    this.hits = this.hits + 1;
    var e = this.moveToFront(k);
    this.requirePresent(e != null, "no mapping for " + k);
    return e.value;
  }
  method moveToFront(k) {
    var e = this.entries;
    var prev = null;
    while (e != null && e.key != k) {
      prev = e;
      e = e.next;
    }
    if (e != null && prev != null) {
      prev.next = e.next;
      e.next = this.entries;
      this.entries = e;
    }
    return e;
  }
  method containsKey(k) { return this.findEntry(k) != null; }
  // Pure failure non-atomic: the size is decremented before the
  // presence check.
  method remove(k) throws NoSuchElementException {
    this.size = this.size - 1;
    var e = this.entries;
    var prev = null;
    while (e != null && e.key != k) {
      prev = e;
      e = e.next;
    }
    this.requirePresent(e != null, "remove of absent key " + k);
    if (prev == null) { this.entries = e.next; } else { prev.next = e.next; }
    return e.value;
  }
  // Pure failure non-atomic: pair-by-pair merge.
  method merge(other) throws OutOfMemoryError {
    var e = other.entries;
    while (e != null) {
      this.put(e.key, e.value);
      e = e.next;
    }
    return null;
  }
  method keys() throws NegativeArraySizeException {
    var out = newArray(this.size);
    var e = this.entries;
    var i = 0;
    while (e != null) {
      out[i] = e.key;
      i = i + 1;
      e = e.next;
    }
    return out;
  }
}

function main() {
  var map = new LLMap();
  map.put("one", 1);
  map.put("two", 2);
  map.put("three", 3);
  check(map.count() == 3, "count");
  check(map.get("one") == 1, "get one");
  check(map.hits == 1, "hit counter");
  check(map.containsKey("two"), "containsKey");
  map.put("two", 22);
  check(map.get("two") == 22, "overwrite");
  check(map.count() == 3, "overwrite keeps count");
  try {
    map.get("nine");
  } catch (NoSuchElementException e) {
    println("get absent: " + e.message);
  }
  check(map.remove("one") == 1, "remove");
  check(map.count() == 2, "count after remove");
  var extra = new LLMap();
  extra.put("four", 4);
  extra.put("five", 5);
  map.merge(extra);
  check(map.count() == 4, "count after merge");
  var keys = map.keys();
  check(len(keys) == 4, "keys");
  try {
    map.remove("one");
  } catch (NoSuchElementException e) {
    println("remove absent: " + e.message);
  }
  // The failed remove corrupted the size (4 -> 3): this is precisely
  // the failure non-atomicity the detector reports for LLMap.remove.
  check(map.count() == 3, "count corrupted by failed remove");
  var dict = new LLMap();
  var words = ["ash", "birch", "cedar", "fir", "oak", "pine", "yew"];
  for (var i = 0; i < len(words); i = i + 1) { dict.put(words[i], i); }
  for (var round = 0; round < 4; round = round + 1) {
    for (var i = 0; i < len(words); i = i + 1) {
      check(dict.get(words[i]) == i, "dict get");
    }
  }
  check(dict.count() == 7, "dict count");
  check(dict.remove("fir") == 3, "dict remove");
  check(!dict.containsKey("fir"), "dict removed");
  println("final=" + map.count() + "/" + dict.count());
  return 0;
}
|}
