(* LinkedList workload (Java suite).

   Modelled on the Doug Lea collections LinkedList used by the paper:
   a singly-linked list with head/tail pointers and a rich operation
   mix.  Several methods follow the "mutate, then call something that
   may throw" pattern — the paper found 18 pure failure non-atomic
   methods in this application — and [fixed_source] is the repaired
   variant of the case study (§6.1): trivial reorderings plus
   temporaries reduce the pure non-atomic set to the few methods that
   cannot be fixed locally. *)

let name = "LinkedList"

let classes =
  Fragments.collections_base ^ Fragments.cell
  ^ {|
class LinkedList extends AbstractContainer {
  field head;
  field tail;
  field modCount;
  method init() {
    super.init();
    this.head = null;
    this.tail = null;
    this.modCount = 0;
    return this;
  }
  // Pure failure non-atomic: size and modCount move before the cell
  // allocation, which can fail.
  method addFirst(v) throws OutOfMemoryError {
    this.size = this.size + 1;
    this.modCount = this.modCount + 1;
    var cell = new Cell(v);
    cell.next = this.head;
    this.head = cell;
    if (this.tail == null) { this.tail = cell; }
    return null;
  }
  // Failure atomic: allocate first, link, then update counters.
  method addLast(v) throws OutOfMemoryError {
    var cell = new Cell(v);
    if (this.tail == null) { this.head = cell; this.tail = cell; }
    else { this.tail.next = cell; this.tail = cell; }
    this.size = this.size + 1;
    this.modCount = this.modCount + 1;
    return null;
  }
  // Pure failure non-atomic: bumps counters before validating the
  // index; the driver exercises the real out-of-range path.
  method insertAt(index, v) throws IndexOutOfBoundsException, OutOfMemoryError {
    this.modCount = this.modCount + 1;
    this.rangeCheck(index, this.size + 1);
    if (index == 0) { return this.addFirst(v); }
    if (index == this.size) { return this.addLast(v); }
    var prev = this.cellAt(index - 1);
    var cell = new Cell(v);
    cell.next = prev.next;
    prev.next = cell;
    this.size = this.size + 1;
    return null;
  }
  method removeFirst() throws NoSuchElementException {
    this.requirePresent(this.head != null, "removeFirst on empty list");
    var cell = this.head;
    this.head = cell.next;
    if (this.head == null) { this.tail = null; }
    this.size = this.size - 1;
    this.modCount = this.modCount + 1;
    return cell.value;
  }
  // Pure failure non-atomic: decrements size before locating the
  // cell, so an out-of-range index leaves the count wrong.
  method removeAt(index) throws IndexOutOfBoundsException, NoSuchElementException {
    this.size = this.size - 1;
    this.modCount = this.modCount + 1;
    if (index == 0) {
      var first = this.head;
      this.requirePresent(first != null, "removeAt on empty list");
      this.head = first.next;
      if (this.head == null) { this.tail = null; }
      return first.value;
    }
    var prev = this.cellAt(index - 1);
    this.requirePresent(prev != null && prev.next != null, "removeAt " + index);
    var victim = prev.next;
    prev.next = victim.next;
    if (victim == this.tail) { this.tail = prev; }
    return victim.value;
  }
  method cellAt(index) throws IndexOutOfBoundsException {
    this.rangeCheck(index, this.size);
    var cur = this.head;
    for (var i = 0; i < index; i = i + 1) { cur = cur.next; }
    return cur;
  }
  method get(index) throws IndexOutOfBoundsException {
    return this.cellAt(index).value;
  }
  method set(index, v) throws IndexOutOfBoundsException {
    var cell = this.cellAt(index);
    var old = cell.value;
    cell.value = v;
    return old;
  }
  method indexOf(v) {
    var cur = this.head;
    var i = 0;
    while (cur != null) {
      if (cur.value == v) { return i; }
      cur = cur.next;
      i = i + 1;
    }
    return -1;
  }
  method contains(v) { return this.indexOf(v) >= 0; }
  // Pure failure non-atomic: elements are peeled off one by one, so an
  // exception mid-way (even with atomic callees) loses elements.
  method addAllFirst(values) throws OutOfMemoryError {
    for (var i = len(values) - 1; i >= 0; i = i - 1) {
      this.addFirst(values[i]);
    }
    return null;
  }
  // Failure atomic despite calls: builds the new spine in locals and
  // commits with plain field writes at the end.
  method toArray() throws NegativeArraySizeException {
    var out = newArray(this.size);
    var cur = this.head;
    var i = 0;
    while (cur != null) {
      out[i] = cur.value;
      cur = cur.next;
      i = i + 1;
    }
    return out;
  }
  method clear() {
    this.head = null;
    this.tail = null;
    this.size = 0;
    this.modCount = this.modCount + 1;
    return null;
  }
}

// Stack facade over LinkedList: pure delegation, hence conditional
// failure non-atomic wherever the underlying list is non-atomic.
class ListStack {
  field list;
  method init() {
    this.list = new LinkedList();
    return this;
  }
  method push(v) throws OutOfMemoryError { return this.list.addFirst(v); }
  method pop() throws NoSuchElementException { return this.list.removeFirst(); }
  method top() throws IndexOutOfBoundsException { return this.list.get(0); }
  method depth() { return this.list.count(); }
}
|}

let driver =
  {|
function main() {
  var list = new LinkedList();
  for (var i = 0; i < 6; i = i + 1) { list.addLast(i * 10); }
  list.addFirst(-1);
  list.insertAt(3, 99);
  check(list.count() == 8, "count after inserts");
  check(list.get(3) == 99, "inserted value");
  check(list.indexOf(99) == 3, "indexOf");
  check(list.contains(40), "contains 40");
  list.set(0, -2);
  check(list.get(0) == -2, "set head");
  list.removeAt(3);
  check(list.count() == 7, "count after removeAt");
  list.removeFirst();
  list.addAllFirst([7, 8, 9]);
  check(list.count() == 9, "count after addAllFirst");
  var arr = list.toArray();
  check(len(arr) == 9, "toArray length");
  try {
    list.insertAt(99, 0);
  } catch (IndexOutOfBoundsException e) {
    println("insertAt range: " + e.message);
  }
  try {
    list.removeAt(42);
  } catch (IndexOutOfBoundsException e) {
    println("removeAt range: " + e.message);
  }
  var stack = new ListStack();
  stack.push("a");
  stack.push("b");
  check(stack.top() == "b", "stack top");
  check(stack.pop() == "b", "stack pop");
  check(stack.depth() == 1, "stack depth");
  var empty = new LinkedList();
  try {
    empty.removeFirst();
  } catch (NoSuchElementException e) {
    println("removeFirst empty: " + e.message);
  }
  empty.clear();
  var queue = new LinkedList();
  for (var i = 0; i < 10; i = i + 1) { queue.addLast("job" + i); }
  for (var i = 0; i < 4; i = i + 1) {
    check(queue.removeFirst() == "job" + i, "queue order");
  }
  queue.insertAt(2, "rush");
  check(queue.indexOf("rush") == 2, "rush placed");
  check(queue.count() == 7, "queue count");
  var order = queue.toArray();
  check(len(order) == 7, "queue snapshot");
  println("final=" + list.count() + "/" + queue.count());
  return 0;
}
|}

let source = classes ^ driver

(* The case-study variant (§6.1): the same application after "trivial
   modifications" — statement reordering and temporaries — except for
   [addAllFirst], whose loop cannot be fixed locally and remains pure
   failure non-atomic (the paper ends with 3 such methods; masking or a
   rewrite is needed for them). *)
let fixed_classes =
  Fragments.collections_base ^ Fragments.cell
  ^ {|
class LinkedList extends AbstractContainer {
  field head;
  field tail;
  field modCount;
  method init() {
    super.init();
    this.head = null;
    this.tail = null;
    this.modCount = 0;
    return this;
  }
  // fixed: allocate first, then commit counters.
  method addFirst(v) throws OutOfMemoryError {
    var cell = new Cell(v);
    cell.next = this.head;
    this.head = cell;
    if (this.tail == null) { this.tail = cell; }
    this.size = this.size + 1;
    this.modCount = this.modCount + 1;
    return null;
  }
  method addLast(v) throws OutOfMemoryError {
    var cell = new Cell(v);
    if (this.tail == null) { this.head = cell; this.tail = cell; }
    else { this.tail.next = cell; this.tail = cell; }
    this.size = this.size + 1;
    this.modCount = this.modCount + 1;
    return null;
  }
  // fixed: validate and locate before mutating anything.
  method insertAt(index, v) throws IndexOutOfBoundsException, OutOfMemoryError {
    this.rangeCheck(index, this.size + 1);
    if (index == 0) { return this.addFirst(v); }
    if (index == this.size) { return this.addLast(v); }
    var prev = this.cellAt(index - 1);
    var cell = new Cell(v);
    cell.next = prev.next;
    prev.next = cell;
    this.size = this.size + 1;
    this.modCount = this.modCount + 1;
    return null;
  }
  method removeFirst() throws NoSuchElementException {
    this.requirePresent(this.head != null, "removeFirst on empty list");
    var cell = this.head;
    this.head = cell.next;
    if (this.head == null) { this.tail = null; }
    this.size = this.size - 1;
    this.modCount = this.modCount + 1;
    return cell.value;
  }
  // fixed: locate first, then unlink and update counters.
  method removeAt(index) throws IndexOutOfBoundsException, NoSuchElementException {
    if (index == 0) {
      var first = this.head;
      this.requirePresent(first != null, "removeAt on empty list");
      this.head = first.next;
      if (this.head == null) { this.tail = null; }
      this.size = this.size - 1;
      this.modCount = this.modCount + 1;
      return first.value;
    }
    var prev = this.cellAt(index - 1);
    this.requirePresent(prev != null && prev.next != null, "removeAt " + index);
    var victim = prev.next;
    prev.next = victim.next;
    if (victim == this.tail) { this.tail = prev; }
    this.size = this.size - 1;
    this.modCount = this.modCount + 1;
    return victim.value;
  }
  method cellAt(index) throws IndexOutOfBoundsException {
    this.rangeCheck(index, this.size);
    var cur = this.head;
    for (var i = 0; i < index; i = i + 1) { cur = cur.next; }
    return cur;
  }
  method get(index) throws IndexOutOfBoundsException {
    return this.cellAt(index).value;
  }
  method set(index, v) throws IndexOutOfBoundsException {
    var cell = this.cellAt(index);
    var old = cell.value;
    cell.value = v;
    return old;
  }
  method indexOf(v) {
    var cur = this.head;
    var i = 0;
    while (cur != null) {
      if (cur.value == v) { return i; }
      cur = cur.next;
      i = i + 1;
    }
    return -1;
  }
  method contains(v) { return this.indexOf(v) >= 0; }
  // Still pure failure non-atomic: no local fix exists for a
  // multi-element mutation loop; this is what masking is for.
  method addAllFirst(values) throws OutOfMemoryError {
    for (var i = len(values) - 1; i >= 0; i = i - 1) {
      this.addFirst(values[i]);
    }
    return null;
  }
  method toArray() throws NegativeArraySizeException {
    var out = newArray(this.size);
    var cur = this.head;
    var i = 0;
    while (cur != null) {
      out[i] = cur.value;
      cur = cur.next;
      i = i + 1;
    }
    return out;
  }
  method clear() {
    this.head = null;
    this.tail = null;
    this.size = 0;
    this.modCount = this.modCount + 1;
    return null;
  }
}

class ListStack {
  field list;
  method init() {
    this.list = new LinkedList();
    return this;
  }
  method push(v) throws OutOfMemoryError { return this.list.addFirst(v); }
  method pop() throws NoSuchElementException { return this.list.removeFirst(); }
  method top() throws IndexOutOfBoundsException { return this.list.get(0); }
  method depth() { return this.list.count(); }
}
|}

let fixed_source = fixed_classes ^ driver
