(** Convenience harness: run the full detection pipeline on a workload
    application and collect the per-app statistics behind Table 1 and
    Figures 2–4. *)

open Failatom_core

type outcome = {
  app : Registry.t;
  detection : Detect.result;
  classification : Classify.t;
  report : Report.app_result;
}

val flavor_of_suite : Registry.suite -> Detect.flavor
(** C++ apps run the source-weaving flavor, Java apps the load-time
    filter flavor — matching the paper's two implementations. *)

val detect_app : ?config:Config.t -> ?flavor:Detect.flavor -> Registry.t -> outcome

val run_app : Registry.t -> string
(** Runs an application standalone (no instrumentation) and returns its
    output.  Raises if the program is malformed or fails. *)
