(* xml2Cviasc workloads (C++ suite): XML-to-C conversion routed through
   a Self* component pipeline, in two variants like the paper's
   xml2Cviasc1/xml2Cviasc2.  Both variants share the XML library, the
   component substrate and the core conversion components; variant 2
   adds validation and attribute indexing stages and drives a different
   document. *)

(* Components shared by both variants. *)
let components =
  Fragments.xml_lib ^ Fragments.sc_lib
  ^ {|
// Parses a document and feeds elements downstream, depth first.  The
// progress counter moves per element: pure failure non-atomic.
class XmlSourceComponent extends ScComponent {
  field emitted;
  method init(name) {
    super.init(name);
    this.emitted = 0;
    return this;
  }
  method feed(doc) throws XmlSyntaxError, OutOfMemoryError, IllegalStateException {
    var parser = new XmlParser();
    var root = parser.parse(doc);
    this.feedElement(root);
    return this.emitted;
  }
  method feedElement(node) throws IllegalStateException {
    this.emitted = this.emitted + 1;
    this.emit(node);
    for (var i = 0; i < node.childCount; i = i + 1) {
      this.feedElement(node.children[i]);
    }
    return null;
  }
}

// Turns an element into a flat C-struct declaration string.
class FlattenComponent extends ScComponent {
  field separator;
  method init(name, separator) {
    super.init(name);
    this.separator = separator;
    return this;
  }
  method consume(item) throws IllegalStateException {
    var decl = "struct " + item.tag + " {";
    for (var i = 0; i < item.attrCount; i = i + 1) {
      decl = decl + " char* " + item.attrNames[i] + this.separator;
    }
    if (item.text != "") { decl = decl + " char* _text" + this.separator; }
    return this.emit(decl + " }");
  }
}

// Rejects elements lacking a required attribute.  Validation happens
// before any state change: failure atomic.
class ValidateComponent extends ScComponent {
  field required;
  field seen;
  method init(name, required) {
    super.init(name);
    this.required = required;
    this.seen = 0;
    return this;
  }
  method consume(item) throws IllegalStateException {
    if (item.attr(this.required) == null) {
      throw new IllegalStateException(item.tag + " lacks @" + this.required);
    }
    var forwarded = this.emit(item);
    this.seen = this.seen + 1;
    return forwarded;
  }
}

// Builds an attribute index while forwarding.  The index entries are
// committed before the forward: pure failure non-atomic.
class AttrIndexComponent extends ScComponent {
  field keys;
  field tags;
  field indexed;
  method init(name) {
    super.init(name);
    this.keys = newArray(64);
    this.tags = newArray(64);
    this.indexed = 0;
    return this;
  }
  method consume(item) throws IllegalStateException {
    for (var i = 0; i < item.attrCount; i = i + 1) {
      this.keys[this.indexed] = item.attrNames[i];
      this.tags[this.indexed] = item.tag;
      this.indexed = this.indexed + 1;
    }
    return this.emit(item);
  }
  method lookupTag(key) {
    for (var i = 0; i < this.indexed; i = i + 1) {
      if (this.keys[i] == key) { return this.tags[i]; }
    }
    return null;
  }
}
|}

(* Additional stages used by variant 2. *)
let extra_components =
  {|
// Census of element tags seen while forwarding.  The census arrays are
// updated before the forward: pure failure non-atomic.
class StatsComponent extends ScComponent {
  field tags;
  field counts;
  field distinct;
  method init(name) {
    super.init(name);
    this.tags = newArray(32);
    this.counts = newArray(32);
    this.distinct = 0;
    return this;
  }
  method consume(item) throws IllegalStateException {
    var at = -1;
    for (var i = 0; i < this.distinct; i = i + 1) {
      if (this.tags[i] == item.tag) { at = i; }
    }
    if (at < 0) {
      at = this.distinct;
      this.tags[at] = item.tag;
      this.counts[at] = 0;
      this.distinct = this.distinct + 1;
    }
    this.counts[at] = this.counts[at] + 1;
    return this.emit(item);
  }
  method countOf(tag) {
    for (var i = 0; i < this.distinct; i = i + 1) {
      if (this.tags[i] == tag) { return this.counts[i]; }
    }
    return 0;
  }
}

// Refuses to forward more than [limit] elements.  Validation happens
// before any state change: failure atomic; the counter commits last.
class LimitComponent extends ScComponent {
  field limit;
  field passed;
  method init(name, limit) {
    super.init(name);
    this.limit = limit;
    this.passed = 0;
    return this;
  }
  method consume(item) throws IllegalStateException {
    if (this.passed >= this.limit) {
      throw new IllegalStateException(this.name + ": element limit " + this.limit);
    }
    var forwarded = this.emit(item);
    this.passed = this.passed + 1;
    return forwarded;
  }
}
|}

let name1 = "xml2Cviasc1"

let source1 =
  components
  ^ {|
function main() {
  var sink = new ScSink("csink");
  var flatten = new FlattenComponent("flatten", ";");
  flatten.connect(sink);
  var source = new XmlSourceComponent("source");
  source.connect(flatten);
  var doc = "<root><item id=\"1\" kind=\"a\"/><item id=\"2\" kind=\"b\"/><note lang=\"en\">hi</note></root>";
  var n = source.feed(doc);
  check(n == 4, "four elements");
  check(sink.receivedCount == 4, "four structs");
  check(sink.itemAt(0) == "struct root { }", "root struct");
  check(sink.itemAt(1) == "struct item { char* id; char* kind; }", "item struct");
  check(sink.itemAt(3) == "struct note { char* lang; char* _text; }", "note struct");
  var orphan = new XmlSourceComponent("orphan");
  try {
    orphan.feed("<a/>");
  } catch (IllegalStateException e) {
    println("orphan: " + e.message);
  }
  check(orphan.emitted == 1, "counter leaked by failed feed");
  try {
    source.feed("<broken");
  } catch (XmlSyntaxError e) {
    println("syntax: " + e.message);
  }
  println("final=" + sink.receivedCount);
  return 0;
}
|}

let name2 = "xml2Cviasc2"

let source2 =
  components ^ extra_components
  ^ {|
function main() {
  var sink = new ScSink("csink");
  var flatten = new FlattenComponent("flatten", ";");
  flatten.connect(sink);
  var index = new AttrIndexComponent("index");
  index.connect(flatten);
  var stats = new StatsComponent("stats");
  stats.connect(index);
  var limiter = new LimitComponent("limit", 16);
  limiter.connect(stats);
  var validate = new ValidateComponent("validate", "id");
  validate.connect(limiter);
  var source = new XmlSourceComponent("source");
  source.connect(validate);
  var doc = "<items id=\"root\"><box id=\"b1\" w=\"3\"/><box id=\"b2\" w=\"5\"/></items>";
  var n = source.feed(doc);
  check(n == 3, "three elements");
  check(validate.seen == 3, "validated");
  check(index.indexed == 5, "five attributes indexed");
  check(index.lookupTag("w") == "box", "index lookup");
  check(index.lookupTag("nope") == null, "index miss");
  check(sink.receivedCount == 3, "three structs");
  check(sink.itemAt(1) == "struct box { char* id; char* w; }", "box struct");
  check(stats.countOf("box") == 2, "stats census");
  check(stats.countOf("items") == 1, "stats root");
  check(stats.countOf("ghost") == 0, "stats miss");
  check(limiter.passed == 3, "limit accounting");
  var strictSink = new ScSink("tiny");
  var tight = new LimitComponent("tight", 1);
  tight.connect(strictSink);
  var src3 = new XmlSourceComponent("src3");
  src3.connect(tight);
  try {
    src3.feed("<a id=\"1\"><b id=\"2\"/></a>");
  } catch (IllegalStateException e) {
    println("limit: " + e.message);
  }
  check(strictSink.receivedCount == 1, "one passed the limit");
  var bad = "<items id=\"root\"><box w=\"1\"/></items>";
  var sink2 = new ScSink("strict");
  var validate2 = new ValidateComponent("strict-validate", "id");
  validate2.connect(sink2);
  var source2 = new XmlSourceComponent("strict-source");
  source2.connect(validate2);
  try {
    source2.feed(bad);
  } catch (IllegalStateException e) {
    println("invalid: " + e.message);
  }
  check(source2.emitted == 2, "partial feed visible");
  check(validate2.seen == 1, "only root validated");
  println("final=" + sink.receivedCount + "/" + sink2.receivedCount);
  return 0;
}
|}
