(* Dynarray workload (Java suite): a growable array in the style of the
   Doug Lea collections Dynarray, plus a sorted subclass exercising
   inheritance. *)

let name = "Dynarray"

let source =
  Fragments.collections_base
  ^ {|
class Dynarray extends AbstractContainer {
  field items;
  field growths;
  method init(capacity) throws NegativeArraySizeException {
    super.init();
    this.items = newArray(capacity);
    this.growths = 0;
    return this;
  }
  // Pure failure non-atomic: the element count moves before the
  // growth helper, which may fail, runs.
  method add(v) throws OutOfMemoryError {
    this.size = this.size + 1;
    this.ensureCapacity(this.size);
    this.items[this.size - 1] = v;
    return null;
  }
  // Failure atomic: the bigger array is built in locals and committed
  // with two field writes at the end.
  method ensureCapacity(needed) throws OutOfMemoryError {
    if (needed <= len(this.items)) { return null; }
    var capacity = max(1, len(this.items));
    while (capacity < needed) { capacity = capacity * 2; }
    var bigger = this.allocSlots(capacity);
    arraycopy(this.items, 0, bigger, 0, this.size - 1);
    this.items = bigger;
    this.growths = this.growths + 1;
    return null;
  }
  // Allocation routed through a method so that it is an injection
  // point, like operator new in the paper's C++ programs.
  method allocSlots(capacity) throws OutOfMemoryError {
    return newArray(capacity);
  }
  // Pure failure non-atomic: shifts elements before validating.
  method insertAt(index, v) throws IndexOutOfBoundsException, OutOfMemoryError {
    this.size = this.size + 1;
    this.ensureCapacity(this.size);
    for (var i = this.size - 1; i > index; i = i - 1) {
      this.items[i] = this.items[i - 1];
    }
    this.rangeCheck(index, this.size);
    this.items[index] = v;
    return null;
  }
  // Failure atomic: validate first, then shift.
  method removeAt(index) throws IndexOutOfBoundsException {
    this.rangeCheck(index, this.size);
    var old = this.items[index];
    for (var i = index; i < this.size - 1; i = i + 1) {
      this.items[i] = this.items[i + 1];
    }
    this.items[this.size - 1] = null;
    this.size = this.size - 1;
    return old;
  }
  // Pure failure non-atomic: element-by-element removal.
  method removeRange(from, until) throws IndexOutOfBoundsException {
    for (var i = from; i < until; i = i + 1) {
      this.removeAt(from);
    }
    return null;
  }
  method get(index) throws IndexOutOfBoundsException {
    this.rangeCheck(index, this.size);
    return this.items[index];
  }
  method set(index, v) throws IndexOutOfBoundsException {
    this.rangeCheck(index, this.size);
    var old = this.items[index];
    this.items[index] = v;
    return old;
  }
  method indexOf(v) {
    for (var i = 0; i < this.size; i = i + 1) {
      if (this.items[i] == v) { return i; }
    }
    return -1;
  }
  method contains(v) { return this.indexOf(v) >= 0; }
  method trim() throws OutOfMemoryError {
    var exact = this.allocSlots(this.size);
    arraycopy(this.items, 0, exact, 0, this.size);
    this.items = exact;
    return null;
  }
  method capacity() { return len(this.items); }
}

// Sorted view: insertion delegates to the (non-atomic) insertAt, so
// insertSorted is conditional failure non-atomic.
class SortedDynarray extends Dynarray {
  method lowerBound(v) {
    var lo = 0;
    var hi = this.size;
    while (lo < hi) {
      var mid = (lo + hi) / 2;
      if (this.items[mid] < v) { lo = mid + 1; } else { hi = mid; }
    }
    return lo;
  }
  method insertSorted(v) throws IndexOutOfBoundsException, OutOfMemoryError {
    return this.insertAt(this.lowerBound(v), v);
  }
  method isSorted() {
    for (var i = 1; i < this.size; i = i + 1) {
      if (this.items[i - 1] > this.items[i]) { return false; }
    }
    return true;
  }
}

function main() {
  var arr = new Dynarray(2);
  for (var i = 0; i < 9; i = i + 1) { arr.add(i * 3); }
  check(arr.count() == 9, "count after adds");
  check(arr.capacity() >= 9, "grew");
  arr.insertAt(4, 100);
  check(arr.get(4) == 100, "insertAt value");
  check(arr.indexOf(100) == 4, "indexOf");
  arr.set(0, -5);
  check(arr.removeAt(0) == -5, "removeAt returns old");
  arr.removeRange(2, 5);
  check(arr.count() == 6, "count after removeRange");
  arr.trim();
  check(arr.capacity() == 6, "trim to size");
  try {
    arr.get(77);
  } catch (IndexOutOfBoundsException e) {
    println("get range: " + e.message);
  }
  try {
    arr.insertAt(44, 1);
  } catch (IndexOutOfBoundsException e) {
    println("insertAt range: " + e.message);
  }
  var sorted = new SortedDynarray(4);
  sorted.insertSorted(5);
  sorted.insertSorted(1);
  sorted.insertSorted(9);
  sorted.insertSorted(3);
  check(sorted.isSorted(), "sorted invariant");
  check(sorted.count() == 4, "sorted count");
  var churn = new Dynarray(1);
  for (var i = 0; i < 16; i = i + 1) { churn.add(i); }
  for (var i = 0; i < 8; i = i + 1) { churn.removeAt(0); }
  for (var i = 0; i < 8; i = i + 1) { churn.insertAt(i, i * 2); }
  check(churn.count() == 16, "churn count");
  var scan2 = 0;
  for (var i = 0; i < churn.count(); i = i + 1) { scan2 = scan2 + churn.get(i); }
  check(scan2 > 0, "churn scan");
  for (var i = 0; i < 12; i = i + 1) { sorted.insertSorted(12 - i); }
  check(sorted.isSorted(), "sorted after churn");
  println("final=" + arr.count() + "/" + sorted.count() + "/" + churn.count());
  return 0;
}
|}
