(** The xml2Cviasc workloads (C++ suite): XML-to-C conversion routed
    through a Self* component pipeline, in two variants sharing their
    component classes — mirroring the paper's xml2Cviasc1/xml2Cviasc2. *)

val components : string
(** The shared pipeline components (parser source + flatten/validate/
    index stages). *)

val name1 : string
val source1 : string
(** Variant 1: source -> flatten -> sink. *)

val name2 : string
val source2 : string
(** Variant 2: adds validation and attribute indexing. *)
