(** HashedMap workload (Java suite): a chained hash map with
    load-factor rehashing, modelled on the Doug Lea collections
    HashedMap.

    One of the paper's Table-1 workload applications, re-implemented in
    MiniLang with an equivalent structure and a deterministic driver. *)

val name : string

val map_classes : string
(** The map classes without a driver; reused verbatim by the HashedSet
    application (cross-experiment class reuse, as in the paper). *)

val source : string
(** The full MiniLang program, including its [main] driver. *)
