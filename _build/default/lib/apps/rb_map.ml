(* RBMap workload (Java suite): a red-black tree map on top of the
   shared RBEngine (also used by the RBTree application, mirroring the
   cross-experiment class reuse the paper reports). *)

let name = "RBMap"

let source =
  Fragments.collections_base ^ Fragments.rb_engine
  ^ {|
class RBMap extends RBEngine {
  // Conditional failure non-atomic: pure delegation to the engine's
  // (pure non-atomic) insertNode.
  method put(k, v) throws OutOfMemoryError {
    return this.insertNode(k, v);
  }
  method get(k) throws NoSuchElementException {
    var node = this.findNode(k);
    this.requirePresent(node != null, "no mapping for " + k);
    return node.value;
  }
  method getOr(k, fallback) {
    var node = this.findNode(k);
    if (node == null) { return fallback; }
    return node.value;
  }
  method containsKey(k) { return this.findNode(k) != null; }
  method firstKey() throws NoSuchElementException {
    return this.minimumFrom(this.root).key;
  }
  method keys() throws NegativeArraySizeException {
    var out = newArray(this.size);
    this.collectKeys(this.root, out, 0);
    return out;
  }
  // Pure failure non-atomic: a naive remove implemented by clearing
  // and reinserting everything but the victim — interrupting it loses
  // mappings wholesale.
  method removeKey(k) throws NoSuchElementException, OutOfMemoryError,
      NegativeArraySizeException {
    var victim = this.findNode(k);
    this.requirePresent(victim != null, "remove of absent key " + k);
    var ks = this.keys();
    var vs = newArray(this.size);
    var at = 0;
    for (var i = 0; i < len(ks); i = i + 1) {
      vs[at] = this.findNode(ks[i]).value;
      at = at + 1;
    }
    this.root = null;
    this.size = 0;
    for (var i = 0; i < len(ks); i = i + 1) {
      if (ks[i] != k) { this.insertNode(ks[i], vs[i]); }
    }
    return null;
  }
  // Proper deletion through the engine's rebalancing delete.
  method deleteKey(k) throws NoSuchElementException {
    this.requirePresent(this.deleteNode(k), "delete of absent key " + k);
    return null;
  }
  method depthOk() {
    return this.blackHeight(this.root) >= 1;
  }
}

function main() {
  var map = new RBMap();
  var keys = [50, 20, 80, 10, 30, 70, 90, 25, 5];
  for (var i = 0; i < len(keys); i = i + 1) {
    map.put(keys[i], keys[i] * 100);
  }
  check(map.count() == 9, "count");
  check(map.countNodes(map.root) == 9, "node count");
  check(map.get(30) == 3000, "get");
  check(map.getOr(31, -1) == -1, "getOr");
  check(map.containsKey(70), "containsKey");
  check(map.firstKey() == 5, "firstKey");
  check(map.depthOk(), "black height");
  map.put(30, 42);
  check(map.get(30) == 42, "overwrite");
  check(map.count() == 9, "overwrite keeps count");
  var sorted = map.keys();
  check(sorted[0] == 5 && sorted[8] == 90, "keys sorted");
  var lookups = 0;
  for (var round = 0; round < 6; round = round + 1) {
    for (var i = 0; i < len(keys); i = i + 1) {
      if (map.containsKey(keys[i])) { lookups = lookups + 1; }
    }
  }
  check(lookups == 54, "lookup reads");
  map.removeKey(20);
  check(map.count() == 8, "count after remove");
  check(!map.containsKey(20), "removed");
  try {
    map.get(20);
  } catch (NoSuchElementException e) {
    println("get absent: " + e.message);
  }
  try {
    map.removeKey(21);
  } catch (NoSuchElementException e) {
    println("remove absent: " + e.message);
  }
  map.deleteKey(80);
  map.deleteKey(5);
  check(map.count() == 6, "count after deletes");
  check(!map.containsKey(80) && !map.containsKey(5), "deleted");
  check(map.firstKey() == 10, "new first key");
  check(map.depthOk(), "balanced after deletes");
  try {
    map.deleteKey(80);
  } catch (NoSuchElementException e) {
    println("delete absent: " + e.message);
  }
  println("final=" + map.count());
  return 0;
}
|}
