(* RegExp workload (Java suite): a small backtracking regular-expression
   engine modelled on the Jakarta Regexp library the paper stress
   tested: a recursive-descent pattern compiler producing a node
   program, and a matcher that runs it.

   Supported syntax: literals, backslash escapes, '.', character
   classes "[a-z0-9]" (with ranges and negation "[^abc]"), alternation
   '|', grouping "(..)", and the postfix operators '*', '+', '?'.
   Matching is anchored at a starting position; [find] scans positions
   and [replaceAll] rewrites every occurrence. *)

let name = "RegExp"

let source =
  {|
class RegexSyntaxError extends Exception {
}

// ---- compiled node program ----------------------------------------
// Each node matches a prefix at [pos] and delegates the rest to its
// [next] chain; matchAt returns the end position or -1.
class ReNode {
  field next;
  method init() {
    this.next = null;
    return this;
  }
  method matchNext(s, pos) {
    if (this.next == null) { return pos; }
    return this.next.matchAt(s, pos);
  }
  method matchAt(s, pos) {
    return this.matchNext(s, pos);
  }
  method lastNode() {
    var cur = this;
    while (cur.next != null) { cur = cur.next; }
    return cur;
  }
  method append(node) {
    this.lastNode().next = node;
    return this;
  }
}

class ReChar extends ReNode {
  field ch;
  method init(ch) {
    super.init();
    this.ch = ch;
    return this;
  }
  method matchAt(s, pos) {
    if (pos >= len(s)) { return -1; }
    if (charAt(s, pos) != this.ch) { return -1; }
    return this.matchNext(s, pos + 1);
  }
}

class ReAny extends ReNode {
  method matchAt(s, pos) {
    if (pos >= len(s)) { return -1; }
    return this.matchNext(s, pos + 1);
  }
}

class ReClass extends ReNode {
  field chars;
  field ranges;
  field negated;
  // [chars] lists single members; [ranges] holds lo/hi pairs packed as
  // consecutive characters ("az09" = a-z plus 0-9).
  method init(chars, ranges, negated) {
    super.init();
    this.chars = chars;
    this.ranges = ranges;
    this.negated = negated;
    return this;
  }
  method accepts(c) {
    var found = false;
    for (var i = 0; i < len(this.chars); i = i + 1) {
      if (charAt(this.chars, i) == c) { found = true; }
    }
    var code = ord(c);
    for (var i = 0; i + 1 < len(this.ranges); i = i + 2) {
      if (code >= ord(charAt(this.ranges, i)) && code <= ord(charAt(this.ranges, i + 1))) {
        found = true;
      }
    }
    if (this.negated) { return !found; }
    return found;
  }
  method matchAt(s, pos) {
    if (pos >= len(s)) { return -1; }
    if (!this.accepts(charAt(s, pos))) { return -1; }
    return this.matchNext(s, pos + 1);
  }
}

// Greedy repetition with backtracking: try to consume as many body
// matches as possible, then give them back until the rest matches.
class ReStar extends ReNode {
  field body;
  field minRepeat;
  method init(body, minRepeat) {
    super.init();
    this.body = body;
    this.minRepeat = minRepeat;
    return this;
  }
  method matchAt(s, pos) {
    return this.tryFrom(s, pos, 0);
  }
  method tryFrom(s, pos, depth) {
    if (depth < 200) {
      var bodyEnd = this.body.matchAt(s, pos);
      if (bodyEnd >= 0 && bodyEnd != pos) {
        var deeper = this.tryFrom(s, bodyEnd, depth + 1);
        if (deeper >= 0) { return deeper; }
      }
    }
    if (depth < this.minRepeat) { return -1; }
    return this.matchNext(s, pos);
  }
}

// Splices a sub-chain back into its owner's continuation, so that
// backtracking inside the sub-chain correctly explores the rest of
// the program (the node-program linking trick of the original
// library).
class ReJoin extends ReNode {
  field owner;
  method init(owner) {
    super.init();
    this.owner = owner;
    return this;
  }
  method matchAt(s, pos) {
    return this.owner.matchNext(s, pos);
  }
}

// Anchors the match at the end of the input.
class ReEnd extends ReNode {
  method matchAt(s, pos) {
    if (pos != len(s)) { return -1; }
    return this.matchNext(s, pos);
  }
}

class ReOpt extends ReNode {
  field body;
  method init(body) {
    super.init();
    this.body = body.append(new ReJoin(this));
    return this;
  }
  method matchAt(s, pos) {
    // the body flows through its join into this.next; only if every
    // body alternative fails do we take the empty option
    var taken = this.body.matchAt(s, pos);
    if (taken >= 0) { return taken; }
    return this.matchNext(s, pos);
  }
}

class ReAlt extends ReNode {
  field leftBranch;
  field rightBranch;
  method init(leftBranch, rightBranch) {
    super.init();
    this.leftBranch = leftBranch.append(new ReJoin(this));
    this.rightBranch = rightBranch.append(new ReJoin(this));
    return this;
  }
  method matchAt(s, pos) {
    var taken = this.leftBranch.matchAt(s, pos);
    if (taken >= 0) { return taken; }
    return this.rightBranch.matchAt(s, pos);
  }
}

// A group "(..)" delegates to its sub-program, whose join links back
// into the group's continuation.
class ReGroup extends ReNode {
  field body;
  method init(body) {
    super.init();
    this.body = body.append(new ReJoin(this));
    return this;
  }
  method matchAt(s, pos) {
    return this.body.matchAt(s, pos);
  }
}

// ---- pattern compiler ----------------------------------------------
// The compiler keeps its cursor in a field; failing mid-pattern leaves
// the cursor moved — its methods are deliberately not failure atomic,
// like the original library's parser.
class ReCompiler {
  field pattern;
  field cursor;
  field compiled;
  method init() {
    this.pattern = "";
    this.cursor = 0;
    this.compiled = 0;
    return this;
  }
  method compile(pattern) throws RegexSyntaxError, OutOfMemoryError {
    this.pattern = pattern;
    this.cursor = 0;
    this.compiled = this.compiled + 1;
    var node = this.parseAlternation();
    if (this.cursor != len(this.pattern)) {
      throw new RegexSyntaxError("trailing input at " + this.cursor);
    }
    return node;
  }
  method atEnd() { return this.cursor >= len(this.pattern); }
  method peekChar() throws RegexSyntaxError {
    if (this.atEnd()) { throw new RegexSyntaxError("unexpected end of pattern"); }
    return charAt(this.pattern, this.cursor);
  }
  method takeChar() throws RegexSyntaxError {
    var c = this.peekChar();
    this.cursor = this.cursor + 1;
    return c;
  }
  method parseAlternation() throws RegexSyntaxError, OutOfMemoryError {
    var left = this.parseSequence();
    if (!this.atEnd() && this.peekChar() == "|") {
      this.takeChar();
      var right = this.parseAlternation();
      return new ReAlt(left, right);
    }
    return left;
  }
  method parseSequence() throws RegexSyntaxError, OutOfMemoryError {
    var head = new ReNode();
    while (!this.atEnd()) {
      var c = this.peekChar();
      if (c == "|" || c == ")") { break; }
      head.append(this.parsePostfix());
    }
    return head;
  }
  method parsePostfix() throws RegexSyntaxError, OutOfMemoryError {
    var atom = this.parseAtom();
    if (this.atEnd()) { return atom; }
    var c = this.peekChar();
    if (c == "*") { this.takeChar(); return new ReStar(atom, 0); }
    if (c == "+") { this.takeChar(); return new ReStar(atom, 1); }
    if (c == "?") { this.takeChar(); return new ReOpt(atom); }
    return atom;
  }
  method parseAtom() throws RegexSyntaxError, OutOfMemoryError {
    var c = this.takeChar();
    if (c == "\\") { return new ReChar(this.takeChar()); }
    if (c == "(") {
      var body = this.parseAlternation();
      if (this.atEnd() || this.takeChar() != ")") {
        throw new RegexSyntaxError("unbalanced group");
      }
      return new ReGroup(body);
    }
    if (c == "[") { return this.parseClass(); }
    if (c == ".") { return new ReAny(); }
    if (c == "*" || c == "+" || c == "?" || c == ")" || c == "|") {
      throw new RegexSyntaxError("misplaced '" + c + "'");
    }
    return new ReChar(c);
  }
  method parseClass() throws RegexSyntaxError, OutOfMemoryError {
    var negated = false;
    if (this.peekChar() == "^") {
      this.takeChar();
      negated = true;
    }
    var chars = "";
    var ranges = "";
    while (this.peekChar() != "]") {
      var c = this.takeChar();
      if (c == "\\") { c = this.takeChar(); }
      if (!this.atEnd() && this.peekChar() == "-") {
        this.takeChar();
        if (this.peekChar() == "]") {
          // trailing '-' is a literal member
          chars = chars + c + "-";
        } else {
          var hi = this.takeChar();
          if (hi == "\\") { hi = this.takeChar(); }
          if (ord(c) > ord(hi)) { throw new RegexSyntaxError("inverted range " + c + "-" + hi); }
          ranges = ranges + c + hi;
        }
      } else {
        chars = chars + c;
      }
    }
    this.takeChar();
    if (chars == "" && ranges == "") { throw new RegexSyntaxError("empty class"); }
    return new ReClass(chars, ranges, negated);
  }
}

// ---- matcher --------------------------------------------------------
// Pure failure non-atomic by design flaw: statistics and last-match
// state are updated before the (possibly failing) node program runs.
class ReMatcher {
  field program;
  field attempts;
  field lastStart;
  field lastEnd;
  // [anchored] appends an end-of-input node: [matches] semantics.
  // Unanchored matchers give prefix semantics for [matchesAt]/[find].
  method init(program, anchored) {
    if (anchored) { program.append(new ReEnd()); }
    this.program = program;
    this.attempts = 0;
    this.lastStart = -1;
    this.lastEnd = -1;
    return this;
  }
  method matchesAt(s, pos) throws IllegalArgumentException {
    this.attempts = this.attempts + 1;
    this.lastStart = pos;
    if (pos < 0 || pos > len(s)) {
      throw new IllegalArgumentException("bad start position " + pos);
    }
    var endPos = this.program.matchAt(s, pos);
    this.lastEnd = endPos;
    return endPos >= 0;
  }
  method matches(s) throws IllegalArgumentException {
    return this.matchesAt(s, 0);
  }
  method find(s) throws IllegalArgumentException {
    for (var at = 0; at <= len(s); at = at + 1) {
      if (this.matchesAt(s, at)) { return at; }
    }
    return -1;
  }
  // Rewrites every (leftmost, non-overlapping) occurrence.  Requires an
  // unanchored matcher; empty matches advance by one to terminate.
  method replaceAll(s, replacement) throws IllegalArgumentException {
    var out = "";
    var at = 0;
    while (at < len(s)) {
      if (this.matchesAt(s, at) && this.lastEnd > at) {
        out = out + replacement;
        at = this.lastEnd;
      } else {
        out = out + charAt(s, at);
        at = at + 1;
      }
    }
    return out;
  }
}

function tryMatch(compiler, pattern, input) {
  var matcher = new ReMatcher(compiler.compile(pattern), true);
  return matcher.matches(input);
}

function main() {
  var compiler = new ReCompiler();
  check(tryMatch(compiler, "abc", "abc"), "literal match");
  check(!tryMatch(compiler, "abc", "abd"), "literal mismatch");
  check(tryMatch(compiler, "ab*c", "ac"), "star zero");
  check(tryMatch(compiler, "ab*c", "abbbc"), "star many");
  check(!tryMatch(compiler, "ab+c", "ac"), "plus needs one");
  check(tryMatch(compiler, "ab+c", "abbc"), "plus many");
  check(tryMatch(compiler, "ab?c", "ac"), "opt absent");
  check(tryMatch(compiler, "ab?c", "abc"), "opt present");
  check(tryMatch(compiler, "a.c", "axc"), "dot");
  check(tryMatch(compiler, "a|b", "b"), "alt");
  check(tryMatch(compiler, "(ab|cd)+", "abcdab"), "group alt plus");
  check(tryMatch(compiler, "[abc]*d", "abcad"), "class star");
  check(!tryMatch(compiler, "[^ab]c", "ac"), "negated class");
  check(tryMatch(compiler, "[^ab]c", "xc"), "negated class pass");
  var matcher = new ReMatcher(compiler.compile("b+"), false);
  check(matcher.find("aaabbc") == 3, "find offset");
  check(matcher.find("xyz") == -1, "find absent");
  check(matcher.attempts > 0, "attempt counter");
  try {
    matcher.matchesAt("abc", -2);
  } catch (IllegalArgumentException e) {
    println("bad pos: " + e.message);
  }
  try {
    compiler.compile("a(b");
  } catch (RegexSyntaxError e) {
    println("syntax: " + e.message);
  }
  try {
    compiler.compile("*a");
  } catch (RegexSyntaxError e) {
    println("syntax: " + e.message);
  }
  check(tryMatch(compiler, "[a-c]+", "abcba"), "range class");
  check(!tryMatch(compiler, "[a-c]+", "abd"), "range rejects");
  check(tryMatch(compiler, "[a-cx]+", "axc"), "range plus single");
  check(tryMatch(compiler, "[0-9][0-9]*", "1024"), "digits");
  check(tryMatch(compiler, "a\\.b", "a.b"), "escaped dot");
  check(!tryMatch(compiler, "a\\.b", "axb"), "escaped dot literal");
  check(tryMatch(compiler, "[a-]+", "a-a"), "trailing dash literal");
  try {
    compiler.compile("[z-a]");
  } catch (RegexSyntaxError e) {
    println("syntax: " + e.message);
  }
  var censor = new ReMatcher(compiler.compile("b+"), false);
  check(censor.replaceAll("abba bab", "*") == "a*a *a*", "replaceAll");
  check(censor.replaceAll("ccc", "*") == "ccc", "replaceAll no match");
  println("final=" + compiler.compiled);
  return 0;
}
|}
