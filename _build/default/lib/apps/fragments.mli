(** MiniLang source fragments shared between workload applications —
    the cross-experiment class reuse the paper reports (inheritance and
    shared libraries cause some classes to be tested in several
    experiments). *)

val collections_base : string
(** [AbstractContainer], the base class of the collection workloads. *)

val cell : string
(** The singly-linked [Cell] used by list-like containers. *)

val rb_engine : string
(** The red-black tree engine shared by RBMap and RBTree. *)

val xml_lib : string
(** Tokenizer, node tree and parser shared by the xml2* pipelines. *)

val sc_lib : string
(** The Self*-style component substrate of the C++ suite. *)
