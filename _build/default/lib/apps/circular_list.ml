(* CircularList workload (Java suite): a doubly-linked circular list
   with a header sentinel and an explicit iterator object, modelled on
   the Doug Lea collections CircularList. *)

let name = "CircularList"

let source =
  Fragments.collections_base
  ^ {|
class DNode {
  field value;
  field prev;
  field next;
  method init(v) {
    this.value = v;
    this.prev = this;
    this.next = this;
    return this;
  }
}

class CircularList extends AbstractContainer {
  field header;
  method init() {
    super.init();
    this.header = new DNode(null);
    return this;
  }
  // Failure atomic: the node allocation (the only thing that can
  // fail) happens before any mutation.
  method insertBefore(anchor, v) throws OutOfMemoryError {
    var node = new DNode(v);
    node.prev = anchor.prev;
    node.next = anchor;
    anchor.prev.next = node;
    anchor.prev = node;
    this.size = this.size + 1;
    return node;
  }
  // Pure failure non-atomic: counts first, allocates second.
  method addFront(v) throws OutOfMemoryError {
    this.size = this.size + 1;
    var node = new DNode(v);
    node.prev = this.header;
    node.next = this.header.next;
    this.header.next.prev = node;
    this.header.next = node;
    return null;
  }
  method addBack(v) throws OutOfMemoryError {
    return this.insertBefore(this.header, v);
  }
  method removeFront() throws NoSuchElementException {
    this.requirePresent(this.size > 0, "removeFront on empty list");
    var node = this.header.next;
    node.prev.next = node.next;
    node.next.prev = node.prev;
    this.size = this.size - 1;
    return node.value;
  }
  method removeBack() throws NoSuchElementException {
    this.requirePresent(this.size > 0, "removeBack on empty list");
    var node = this.header.prev;
    node.prev.next = node.next;
    node.next.prev = node.prev;
    this.size = this.size - 1;
    return node.value;
  }
  // Pure failure non-atomic: rotation moves elements one at a time.
  method rotate(turns) throws OutOfMemoryError, NoSuchElementException {
    for (var i = 0; i < turns; i = i + 1) {
      this.addBack(this.removeFront());
    }
    return null;
  }
  method front() throws NoSuchElementException {
    this.requirePresent(this.size > 0, "front on empty list");
    return this.header.next.value;
  }
  method back() throws NoSuchElementException {
    this.requirePresent(this.size > 0, "back on empty list");
    return this.header.prev.value;
  }
  method contains(v) {
    var cur = this.header.next;
    while (cur != this.header) {
      if (cur.value == v) { return true; }
      cur = cur.next;
    }
    return false;
  }
  method toArray() throws NegativeArraySizeException {
    var out = newArray(this.size);
    var cur = this.header.next;
    var i = 0;
    while (cur != this.header) {
      out[i] = cur.value;
      cur = cur.next;
      i = i + 1;
    }
    return out;
  }
  method iterator() throws OutOfMemoryError {
    return new CircularIter(this);
  }
}

// The iterator is itself an object under test: its [advance] is pure
// failure non-atomic because the cursor moves before the end check.
class CircularIter {
  field list;
  field cursor;
  field steps;
  method init(list) {
    this.list = list;
    this.cursor = list.header.next;
    this.steps = 0;
    return this;
  }
  method hasNext() { return this.cursor != this.list.header; }
  method advance() throws NoSuchElementException {
    var node = this.cursor;
    this.cursor = this.cursor.next;
    this.steps = this.steps + 1;
    this.list.requirePresent(node != this.list.header, "advance past end");
    return node.value;
  }
}

function main() {
  var ring = new CircularList();
  for (var i = 0; i < 5; i = i + 1) { ring.addBack(i); }
  ring.addFront(-1);
  check(ring.count() == 6, "count");
  check(ring.front() == -1, "front");
  check(ring.back() == 4, "back");
  ring.rotate(2);
  check(ring.front() == 1, "front after rotate");
  check(ring.contains(3), "contains");
  check(!ring.contains(42), "not contains");
  var it = ring.iterator();
  var sum = 0;
  while (it.hasNext()) { sum = sum + it.advance(); }
  check(sum == 9, "iterator sum");
  try {
    it.advance();
  } catch (NoSuchElementException e) {
    println("advance: " + e.message);
  }
  var scans = 0;
  for (var round = 0; round < 8; round = round + 1) {
    if (ring.contains(2)) { scans = scans + 1; }
    if (!ring.contains(77)) { scans = scans + 1; }
    if (ring.front() == 1) { scans = scans + 1; }
  }
  check(scans == 24, "scan reads");
  check(ring.removeBack() == 0, "removeBack");
  check(ring.removeFront() == 1, "removeFront");
  var arr = ring.toArray();
  check(len(arr) == 4, "toArray");
  var empty = new CircularList();
  try {
    empty.front();
  } catch (NoSuchElementException e) {
    println("front: " + e.message);
  }
  var wheel = new CircularList();
  for (var i = 0; i < 10; i = i + 1) { wheel.addBack(i * i); }
  wheel.rotate(7);
  var sum2 = 0;
  var it2 = wheel.iterator();
  while (it2.hasNext()) { sum2 = sum2 + it2.advance(); }
  check(sum2 == 285, "wheel sum");
  for (var i = 0; i < 5; i = i + 1) { wheel.removeFront(); }
  check(wheel.count() == 5, "wheel count");
  println("final=" + ring.count() + "/" + wheel.count());
  return 0;
}
|}
