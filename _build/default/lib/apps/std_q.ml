(* stdQ workload (C++ suite): an std::deque-style ring buffer with
   queue facades on top, modelled on the paper's Self* stdQ test. *)

let name = "stdQ"

let source =
  Fragments.collections_base
  ^ {|
class RingDeque extends AbstractContainer {
  field slots;
  field head;
  method init(capacity) throws NegativeArraySizeException {
    super.init();
    this.slots = newArray(capacity);
    this.head = 0;
    return this;
  }
  method slotIndex(logical) {
    return (this.head + logical) % len(this.slots);
  }
  // Failure atomic: growth commits the new ring at the end.
  method grow() throws OutOfMemoryError {
    var bigger = this.allocRing(len(this.slots) * 2);
    for (var i = 0; i < this.size; i = i + 1) {
      bigger[i] = this.slots[this.slotIndex(i)];
    }
    this.slots = bigger;
    this.head = 0;
    return null;
  }
  method allocRing(capacity) throws OutOfMemoryError {
    return newArray(capacity);
  }
  // Failure atomic: possible growth happens before the write.
  method pushBack(v) throws OutOfMemoryError {
    if (this.size == len(this.slots)) { this.grow(); }
    this.slots[this.slotIndex(this.size)] = v;
    this.size = this.size + 1;
    return null;
  }
  // Pure failure non-atomic: the head pointer moves before the
  // (possibly failing) growth check runs.
  method pushFront(v) throws OutOfMemoryError {
    this.head = (this.head + len(this.slots) - 1) % len(this.slots);
    this.size = this.size + 1;
    if (this.size > len(this.slots)) { this.grow(); }
    this.slots[this.slotIndex(0)] = v;
    return null;
  }
  method popFront() throws NoSuchElementException {
    this.requirePresent(this.size > 0, "popFront on empty deque");
    var v = this.slots[this.slotIndex(0)];
    this.slots[this.slotIndex(0)] = null;
    this.head = (this.head + 1) % len(this.slots);
    this.size = this.size - 1;
    return v;
  }
  method popBack() throws NoSuchElementException {
    this.requirePresent(this.size > 0, "popBack on empty deque");
    var v = this.slots[this.slotIndex(this.size - 1)];
    this.slots[this.slotIndex(this.size - 1)] = null;
    this.size = this.size - 1;
    return v;
  }
  method at(i) throws IndexOutOfBoundsException {
    this.rangeCheck(i, this.size);
    return this.slots[this.slotIndex(i)];
  }
  method capacity() { return len(this.slots); }
}

// FIFO facade: conditional failure non-atomic wherever the deque is.
class StdQueue {
  field deque;
  method init(capacity) throws NegativeArraySizeException, OutOfMemoryError {
    this.deque = new RingDeque(capacity);
    return this;
  }
  method enqueue(v) throws OutOfMemoryError { return this.deque.pushBack(v); }
  method enqueueFront(v) throws OutOfMemoryError { return this.deque.pushFront(v); }
  method dequeue() throws NoSuchElementException { return this.deque.popFront(); }
  method front() throws IndexOutOfBoundsException { return this.deque.at(0); }
  method length() { return this.deque.count(); }
  method isEmpty() { return this.deque.isEmpty(); }
}

// Capacity-limited queue: validates, then delegates.
class BoundedQueue extends StdQueue {
  field bound;
  method init(capacity, bound) throws NegativeArraySizeException, OutOfMemoryError {
    super.init(capacity);
    this.bound = bound;
    return this;
  }
  method enqueue(v) throws IllegalStateException, OutOfMemoryError {
    if (this.length() >= this.bound) {
      throw new IllegalStateException("queue bound " + this.bound + " reached");
    }
    return this.deque.pushBack(v);
  }
}

// Binary min-heap priority queue over a plain array (std::priority_queue
// counterpart).  [push] sifts up after committing the count: the heap
// order is violated while sifting, so an interruption leaves a broken
// heap — pure failure non-atomic; [popMin] validates first and sifts
// down with the count already committed, same story.
class PriorityQueue extends AbstractContainer {
  field slots;
  method init(capacity) throws NegativeArraySizeException {
    super.init();
    this.slots = newArray(capacity);
    return this;
  }
  method push(v) throws OutOfMemoryError {
    if (this.size == len(this.slots)) { this.growHeap(); }
    this.slots[this.size] = v;
    this.size = this.size + 1;
    this.siftUp(this.size - 1);
    return null;
  }
  method growHeap() throws OutOfMemoryError {
    var bigger = newArray(max(1, len(this.slots)) * 2);
    arraycopy(this.slots, 0, bigger, 0, this.size);
    this.slots = bigger;
    return null;
  }
  method siftUp(i) {
    while (i > 0) {
      var parent = (i - 1) / 2;
      if (this.slots[parent] <= this.slots[i]) { break; }
      this.swap(parent, i);
      i = parent;
    }
    return null;
  }
  method siftDown(i) {
    while (true) {
      var smallest = i;
      var l = 2 * i + 1;
      var r = 2 * i + 2;
      if (l < this.size && this.slots[l] < this.slots[smallest]) { smallest = l; }
      if (r < this.size && this.slots[r] < this.slots[smallest]) { smallest = r; }
      if (smallest == i) { break; }
      this.swap(i, smallest);
      i = smallest;
    }
    return null;
  }
  method swap(i, j) {
    var tmp = this.slots[i];
    this.slots[i] = this.slots[j];
    this.slots[j] = tmp;
    return null;
  }
  method peekMin() throws NoSuchElementException {
    this.requirePresent(this.size > 0, "peekMin on empty heap");
    return this.slots[0];
  }
  method popMin() throws NoSuchElementException {
    this.requirePresent(this.size > 0, "popMin on empty heap");
    var top = this.slots[0];
    this.size = this.size - 1;
    this.slots[0] = this.slots[this.size];
    this.slots[this.size] = null;
    this.siftDown(0);
    return top;
  }
  // Read-only heap-order audit: failure atomic.
  method heapOrderOk() {
    for (var i = 1; i < this.size; i = i + 1) {
      if (this.slots[(i - 1) / 2] > this.slots[i]) { return false; }
    }
    return true;
  }
}

function main() {
  var dq = new RingDeque(2);
  for (var i = 0; i < 7; i = i + 1) { dq.pushBack(i); }
  check(dq.count() == 7, "deque count");
  check(dq.capacity() == 8, "grew twice");
  dq.pushFront(-1);
  check(dq.at(0) == -1, "pushFront visible");
  check(dq.popFront() == -1, "popFront order");
  check(dq.popBack() == 6, "popBack order");
  check(dq.at(2) == 2, "random access");
  var scan = 0;
  for (var round = 0; round < 8; round = round + 1) {
    for (var i = 0; i < dq.count(); i = i + 1) { scan = scan + dq.at(i); }
  }
  check(scan == 8 * 15, "scan total");
  try {
    dq.at(55);
  } catch (IndexOutOfBoundsException e) {
    println("at range: " + e.message);
  }
  var q = new StdQueue(4);
  q.enqueue("a");
  q.enqueue("b");
  q.enqueueFront("z");
  check(q.front() == "z", "front");
  check(q.dequeue() == "z", "fifo");
  check(q.length() == 2, "length");
  var bq = new BoundedQueue(2, 3);
  bq.enqueue(1);
  bq.enqueue(2);
  bq.enqueue(3);
  try {
    bq.enqueue(4);
  } catch (IllegalStateException e) {
    println("bound: " + e.message);
  }
  check(bq.length() == 3, "bounded length");
  var empty = new RingDeque(2);
  try {
    empty.popFront();
  } catch (NoSuchElementException e) {
    println("empty: " + e.message);
  }
  var pq = new PriorityQueue(2);
  var items = [9, 4, 7, 1, 8, 3, 6, 2, 5];
  for (var i = 0; i < len(items); i = i + 1) { pq.push(items[i]); }
  check(pq.heapOrderOk(), "heap order after pushes");
  check(pq.peekMin() == 1, "min on top");
  var drained = "";
  while (!pq.isEmpty()) { drained = drained + pq.popMin(); }
  check(drained == "123456789", "heap sort order");
  try {
    pq.popMin();
  } catch (NoSuchElementException e) {
    println("heap empty: " + e.message);
  }
  println("final=" + dq.count() + "/" + q.length() + "/" + bq.length() + "/" + pq.count());
  return 0;
}
|}
