(* xml2xml1 workload (C++ suite): an XML-to-XML transformer applying a
   list of rewrite rules (tag renaming, attribute stripping, element
   wrapping) and serializing the result, modelled on the paper's Self*
   xml2xml1 application. *)

let name = "xml2xml1"

let source =
  Fragments.xml_lib
  ^ {|
// Base rule: identity rewrite of a single element (children are
// handled by the transformer).
class XmlRule {
  field applied;
  method init() {
    this.applied = 0;
    return this;
  }
  method matches(node) { return true; }
  // Pure failure non-atomic: counts before delegating to the rewrite.
  method apply(node) throws OutOfMemoryError {
    this.applied = this.applied + 1;
    return this.rewrite(node);
  }
  method rewrite(node) throws OutOfMemoryError { return node; }
}

class RenameRule extends XmlRule {
  field fromTag;
  field toTag;
  method init(fromTag, toTag) {
    super.init();
    this.fromTag = fromTag;
    this.toTag = toTag;
    return this;
  }
  method matches(node) { return node.tag == this.fromTag; }
  // Rewrites in place: the tag changes before [apply]'s counter-side
  // bookkeeping completes in its caller.
  method rewrite(node) throws OutOfMemoryError {
    node.tag = this.toTag;
    return node;
  }
}

class StripAttrRule extends XmlRule {
  field attrName;
  method init(attrName) {
    super.init();
    this.attrName = attrName;
    return this;
  }
  method matches(node) { return node.attr(this.attrName) != null; }
  method rewrite(node) throws OutOfMemoryError {
    var keep = 0;
    for (var i = 0; i < node.attrCount; i = i + 1) {
      if (node.attrNames[i] != this.attrName) {
        node.attrNames[keep] = node.attrNames[i];
        node.attrValues[keep] = node.attrValues[i];
        keep = keep + 1;
      }
    }
    node.attrCount = keep;
    return node;
  }
}

// Applies rules to a tree in place, depth first: pure failure
// non-atomic (an interrupted pass leaves a half-rewritten tree).
class Xml2XmlTransformer {
  field rules;
  field ruleCount;
  field visited;
  method init() {
    this.rules = newArray(8);
    this.ruleCount = 0;
    this.visited = 0;
    return this;
  }
  method addRule(rule) throws IllegalStateException {
    if (this.ruleCount >= len(this.rules)) {
      throw new IllegalStateException("too many rules");
    }
    this.rules[this.ruleCount] = rule;
    this.ruleCount = this.ruleCount + 1;
    return null;
  }
  method transform(node) throws OutOfMemoryError {
    this.visited = this.visited + 1;
    for (var i = 0; i < this.ruleCount; i = i + 1) {
      var rule = this.rules[i];
      if (rule.matches(node)) { rule.apply(node); }
    }
    for (var i = 0; i < node.childCount; i = i + 1) {
      this.transform(node.children[i]);
    }
    return node;
  }
}

// Serializes a tree into the writer's accumulator string; the
// accumulator grows as the tree is walked, so an interrupted write
// leaves a truncated document behind: pure failure non-atomic.
class XmlWriter {
  field acc;
  method init() {
    this.acc = "";
    return this;
  }
  // Re-encodes the predefined entities on the way out.
  method encode(raw) {
    var out = "";
    for (var i = 0; i < len(raw); i = i + 1) {
      var c = charAt(raw, i);
      if (c == "&") { out = out + "&amp;"; }
      else if (c == "<") { out = out + "&lt;"; }
      else if (c == ">") { out = out + "&gt;"; }
      else if (c == "\"") { out = out + "&quot;"; }
      else { out = out + c; }
    }
    return out;
  }
  method writeDocument(node) {
    this.acc = "";
    this.writeNode(node);
    return this.acc;
  }
  method writeNode(node) {
    this.acc = this.acc + "<" + node.tag;
    for (var i = 0; i < node.attrCount; i = i + 1) {
      this.acc = this.acc + " " + node.attrNames[i] + "=\"" + this.encode(node.attrValues[i]) + "\"";
    }
    if (node.childCount == 0 && node.text == "") {
      this.acc = this.acc + "/>";
      return null;
    }
    this.acc = this.acc + ">" + this.encode(node.text);
    for (var i = 0; i < node.childCount; i = i + 1) {
      this.writeNode(node.children[i]);
    }
    this.acc = this.acc + "</" + node.tag + ">";
    return null;
  }
}

function main() {
  var doc = "<doc rev=\"7\"><sec id=\"s1\" draft=\"yes\"><p>alpha</p></sec><sec id=\"s2\" draft=\"no\"><p>beta</p></sec></doc>";
  var parser = new XmlParser();
  var root = parser.parse(doc);
  var transformer = new Xml2XmlTransformer();
  var rename = new RenameRule("sec", "section");
  var strip = new StripAttrRule("draft");
  transformer.addRule(rename);
  transformer.addRule(strip);
  transformer.transform(root);
  check(transformer.visited == 5, "five elements visited");
  check(rename.applied == 2, "two renames");
  check(strip.applied == 2, "two strips");
  check(root.childAt(0).tag == "section", "renamed");
  check(root.childAt(0).attr("draft") == null, "stripped");
  check(root.childAt(0).attr("id") == "s1", "kept id");
  var writer = new XmlWriter();
  var out = writer.writeDocument(root);
  check(out == "<doc rev=\"7\"><section id=\"s1\"><p>alpha</p></section><section id=\"s2\"><p>beta</p></section></doc>",
        "serialized form");
  var reparsed = parser.parse(out);
  check(reparsed.childCount == 2, "round trip children");
  check(reparsed.childAt(1).childAt(0).text == "beta", "round trip text");
  var entities = parser.parse("<m q=\"a&amp;b\">x &lt; y &gt; z</m>");
  check(entities.attr("q") == "a&b", "attr entity decoded");
  check(entities.text == "x < y > z", "text entities decoded");
  var encoded = writer.writeDocument(entities);
  check(encoded == "<m q=\"a&amp;b\">x &lt; y &gt; z</m>", "entities re-encoded");
  check(graphEq(parser.parse(encoded), entities), "entity round trip");
  try {
    parser.parse("<m>bad &copy; here</m>");
  } catch (XmlSyntaxError e) {
    println("entity: " + e.message);
  }
  var greedy = new Xml2XmlTransformer();
  for (var i = 0; i < 8; i = i + 1) { greedy.addRule(new XmlRule()); }
  try {
    greedy.addRule(new XmlRule());
  } catch (IllegalStateException e) {
    println("rules: " + e.message);
  }
  println("final=" + transformer.visited);
  return 0;
}
|}
