(* MiniLang source fragments shared between workload applications.

   The paper notes that "because of the inheritance relationships
   between classes and the reuse of methods, some classes have been
   tested in several of the experiments" — these fragments are that
   reuse: a collection base class, a red-black tree engine shared by
   RBMap and RBTree, an XML library shared by the xml2* pipelines, and
   the Self*-style component substrate of the C++ suite. *)

(* Base class of the collection workloads (java-suite apps). *)
let collections_base =
  {|
// ---- shared collection base -------------------------------------
class AbstractContainer {
  field size;
  method init() {
    this.size = 0;
    return this;
  }
  method count() { return this.size; }
  method isEmpty() { return this.size == 0; }
  method rangeCheck(index, bound) throws IndexOutOfBoundsException {
    if (index < 0 || index >= bound) {
      throw new IndexOutOfBoundsException("index " + index + " out of " + bound);
    }
    return null;
  }
  method requirePresent(found, what) throws NoSuchElementException {
    if (!found) { throw new NoSuchElementException(what); }
    return null;
  }
}
|}

(* Singly-linked cell used by several list-like containers. *)
let cell =
  {|
// ---- shared list cell --------------------------------------------
class Cell {
  field value;
  field next;
  method init(v) {
    this.value = v;
    this.next = null;
    return this;
  }
}
|}

(* Red-black tree engine shared by the RBMap and RBTree applications.
   Nodes carry a key, an optional value (unused by the set), a color
   (1 = red, 0 = black) and parent/child links.  The rebalancing code
   deliberately contains one "mutate across helper calls" sequence —
   the kind of rotation bug the paper's injector is designed to
   surface. *)
let rb_engine =
  {|
// ---- shared red-black engine --------------------------------------
class RBNode {
  field key;
  field value;
  field color;
  field left;
  field right;
  field parent;
  method init(k, v) {
    this.key = k;
    this.value = v;
    this.color = 1;
    this.left = null;
    this.right = null;
    this.parent = null;
    return this;
  }
  method isRed() { return this.color == 1; }
  method paintBlack() { this.color = 0; return null; }
  method paintRed() { this.color = 1; return null; }
}

class RBEngine extends AbstractContainer {
  field root;
  method init() {
    super.init();
    this.root = null;
    return this;
  }
  method findNode(k) {
    var cur = this.root;
    while (cur != null) {
      if (k == cur.key) { return cur; }
      if (k < cur.key) { cur = cur.left; } else { cur = cur.right; }
    }
    return null;
  }
  method minimumFrom(node) throws NoSuchElementException {
    this.requirePresent(node != null, "empty tree");
    var cur = node;
    while (cur.left != null) { cur = cur.left; }
    return cur;
  }
  method rotateLeft(x) {
    var y = x.right;
    x.right = y.left;
    if (y.left != null) { y.left.parent = x; }
    y.parent = x.parent;
    if (x.parent == null) { this.root = y; }
    else {
      if (x == x.parent.left) { x.parent.left = y; } else { x.parent.right = y; }
    }
    y.left = x;
    x.parent = y;
    return null;
  }
  method rotateRight(x) {
    var y = x.left;
    x.left = y.right;
    if (y.right != null) { y.right.parent = x; }
    y.parent = x.parent;
    if (x.parent == null) { this.root = y; }
    else {
      if (x == x.parent.right) { x.parent.right = y; } else { x.parent.left = y; }
    }
    y.right = x;
    x.parent = y;
    return null;
  }
  // Pure failure non-atomic: the node is linked into the tree and the
  // size bumped *before* the allocation-heavy rebalancing runs; an
  // exception during fixup leaves a red-violation behind.
  method insertNode(k, v) throws OutOfMemoryError {
    var node = new RBNode(k, v);
    var parent = null;
    var cur = this.root;
    while (cur != null) {
      parent = cur;
      if (k == cur.key) { cur.value = v; return false; }
      if (k < cur.key) { cur = cur.left; } else { cur = cur.right; }
    }
    node.parent = parent;
    if (parent == null) { this.root = node; }
    else {
      if (k < parent.key) { parent.left = node; } else { parent.right = node; }
    }
    this.size = this.size + 1;
    this.fixupAfterInsert(node);
    return true;
  }
  method fixupAfterInsert(z) {
    var cur = z;
    while (cur.parent != null && cur.parent.isRed()) {
      var parent = cur.parent;
      var grand = parent.parent;
      if (grand == null) { break; }
      if (parent == grand.left) {
        var uncle = grand.right;
        if (uncle != null && uncle.isRed()) {
          parent.paintBlack();
          uncle.paintBlack();
          grand.paintRed();
          cur = grand;
        } else {
          if (cur == parent.right) {
            cur = parent;
            this.rotateLeft(cur);
          }
          cur.parent.paintBlack();
          if (cur.parent.parent != null) {
            cur.parent.parent.paintRed();
            this.rotateRight(cur.parent.parent);
          }
        }
      } else {
        var uncle2 = grand.left;
        if (uncle2 != null && uncle2.isRed()) {
          parent.paintBlack();
          uncle2.paintBlack();
          grand.paintRed();
          cur = grand;
        } else {
          if (cur == parent.left) {
            cur = parent;
            this.rotateRight(cur);
          }
          cur.parent.paintBlack();
          if (cur.parent.parent != null) {
            cur.parent.parent.paintRed();
            this.rotateLeft(cur.parent.parent);
          }
        }
      }
    }
    if (this.root != null) { this.root.paintBlack(); }
    return null;
  }
  // Proper red-black deletion with double-black fixup.  Like
  // insertNode it unlinks and recounts before the rebalancing runs, so
  // it is pure failure non-atomic under injection — but structurally
  // correct when it completes.
  method deleteNode(k) {
    var victim = this.findNode(k);
    if (victim == null) { return false; }
    this.size = this.size - 1;
    // reduce to deleting a node with at most one child
    if (victim.left != null && victim.right != null) {
      var heir = this.minimumFrom(victim.right);
      victim.key = heir.key;
      victim.value = heir.value;
      victim = heir;
    }
    var child = victim.left;
    if (child == null) { child = victim.right; }
    if (child != null) {
      // splice the child into the victim's place
      child.parent = victim.parent;
      this.replaceInParent(victim, child);
      if (victim.color == 0) { this.fixupAfterDelete(child); }
    } else {
      if (victim.color == 0) { this.fixupAfterDelete(victim); }
      this.replaceInParent(victim, null);
    }
    return true;
  }
  method replaceInParent(node, replacement) {
    if (node.parent == null) { this.root = replacement; }
    else {
      if (node == node.parent.left) { node.parent.left = replacement; }
      else { node.parent.right = replacement; }
    }
    return null;
  }
  method colorOf(node) {
    if (node == null) { return 0; }
    return node.color;
  }
  method fixupAfterDelete(x) {
    while (x != this.root && this.colorOf(x) == 0) {
      var parent = x.parent;
      if (parent == null) { break; }
      if (x == parent.left) {
        var sib = parent.right;
        if (this.colorOf(sib) == 1) {
          sib.paintBlack();
          parent.paintRed();
          this.rotateLeft(parent);
          sib = parent.right;
        }
        if (sib == null) { x = parent; }
        else {
          if (this.colorOf(sib.left) == 0 && this.colorOf(sib.right) == 0) {
            sib.paintRed();
            x = parent;
          } else {
            if (this.colorOf(sib.right) == 0) {
              if (sib.left != null) { sib.left.paintBlack(); }
              sib.paintRed();
              this.rotateRight(sib);
              sib = parent.right;
            }
            sib.color = parent.color;
            parent.paintBlack();
            if (sib.right != null) { sib.right.paintBlack(); }
            this.rotateLeft(parent);
            x = this.root;
          }
        }
      } else {
        var sib2 = parent.left;
        if (this.colorOf(sib2) == 1) {
          sib2.paintBlack();
          parent.paintRed();
          this.rotateRight(parent);
          sib2 = parent.left;
        }
        if (sib2 == null) { x = parent; }
        else {
          if (this.colorOf(sib2.right) == 0 && this.colorOf(sib2.left) == 0) {
            sib2.paintRed();
            x = parent;
          } else {
            if (this.colorOf(sib2.left) == 0) {
              if (sib2.right != null) { sib2.right.paintBlack(); }
              sib2.paintRed();
              this.rotateLeft(sib2);
              sib2 = parent.left;
            }
            sib2.color = parent.color;
            parent.paintBlack();
            if (sib2.left != null) { sib2.left.paintBlack(); }
            this.rotateRight(parent);
            x = this.root;
          }
        }
      }
    }
    if (x != null) { x.paintBlack(); }
    return null;
  }
  // Validation helpers (read-only, hence failure atomic).
  method blackHeight(node) {
    if (node == null) { return 1; }
    var lh = this.blackHeight(node.left);
    var rh = this.blackHeight(node.right);
    var h = max(lh, rh);
    if (node.color == 0) { return h + 1; }
    return h;
  }
  method countNodes(node) {
    if (node == null) { return 0; }
    return 1 + this.countNodes(node.left) + this.countNodes(node.right);
  }
  method collectKeys(node, out, offset) {
    if (node == null) { return offset; }
    var at = this.collectKeys(node.left, out, offset);
    out[at] = node.key;
    return this.collectKeys(node.right, out, at + 1);
  }
}
|}

(* Minimal XML library shared by the xml2* pipelines (C++ suite).
   Provides a tokenizer, a node tree, and a recursive-descent parser.
   The parser's [parseElement] commits children to the parent node as
   it goes — interrupting it mid-element leaves a half-built sibling
   list, which is exactly what its callers must cope with. *)
let xml_lib =
  {|
// ---- shared XML library -------------------------------------------
class XmlSyntaxError extends Exception {
}

class XmlNode {
  field tag;
  field text;
  field attrNames;
  field attrValues;
  field attrCount;
  field children;
  field childCount;
  method init(tag) {
    this.tag = tag;
    this.text = "";
    this.attrNames = newArray(4);
    this.attrValues = newArray(4);
    this.attrCount = 0;
    this.children = newArray(8);
    this.childCount = 0;
    return this;
  }
  // Failure atomic: room is ensured before anything is committed.
  method addAttr(name, value) throws OutOfMemoryError {
    this.ensureAttrRoom(this.attrCount + 1);
    this.attrNames[this.attrCount] = name;
    this.attrValues[this.attrCount] = value;
    this.attrCount = this.attrCount + 1;
    return null;
  }
  method ensureAttrRoom(needed) throws OutOfMemoryError {
    if (needed <= len(this.attrNames)) { return null; }
    var grown = newArray(len(this.attrNames) * 2);
    arraycopy(this.attrNames, 0, grown, 0, len(this.attrNames));
    var grownV = newArray(len(this.attrValues) * 2);
    arraycopy(this.attrValues, 0, grownV, 0, len(this.attrValues));
    this.attrNames = grown;
    this.attrValues = grownV;
    return null;
  }
  method attr(name) {
    for (var i = 0; i < this.attrCount; i = i + 1) {
      if (this.attrNames[i] == name) { return this.attrValues[i]; }
    }
    return null;
  }
  method addChild(node) throws OutOfMemoryError {
    if (this.childCount == len(this.children)) {
      var grown = newArray(len(this.children) * 2);
      arraycopy(this.children, 0, grown, 0, this.childCount);
      this.children = grown;
    }
    this.children[this.childCount] = node;
    this.childCount = this.childCount + 1;
    return null;
  }
  method childAt(i) throws IndexOutOfBoundsException {
    if (i < 0 || i >= this.childCount) {
      throw new IndexOutOfBoundsException("child " + i);
    }
    return this.children[i];
  }
}

class XmlTokenizer {
  field input;
  field position;
  method init(input) {
    this.input = input;
    this.position = 0;
    return this;
  }
  method atEnd() { return this.position >= len(this.input); }
  method peekChar() throws XmlSyntaxError {
    if (this.atEnd()) { throw new XmlSyntaxError("unexpected end of input"); }
    return charAt(this.input, this.position);
  }
  method nextChar() throws XmlSyntaxError {
    var c = this.peekChar();
    this.position = this.position + 1;
    return c;
  }
  // The scanning methods below work on a local cursor and commit the
  // position once at the end — the careful style the paper attributes
  // to the Self* code base.
  method skipSpaces() {
    var at = this.position;
    while (at < len(this.input)) {
      var c = charAt(this.input, at);
      if (c != " " && c != "\n" && c != "\t") { break; }
      at = at + 1;
    }
    this.position = at;
    return null;
  }
  method expectChar(c) throws XmlSyntaxError {
    var got = this.nextChar();
    if (got != c) {
      throw new XmlSyntaxError("expected '" + c + "', found '" + got + "'");
    }
    return null;
  }
  // Decodes the predefined XML entities; unknown or unterminated
  // entities are syntax errors.
  method decodeEntities(raw) throws XmlSyntaxError {
    var out = "";
    var i = 0;
    while (i < len(raw)) {
      var c = charAt(raw, i);
      if (c == "&") {
        var semi = -1;
        for (var j = i + 1; j < len(raw) && j <= i + 5; j = j + 1) {
          if (charAt(raw, j) == ";") { semi = j; break; }
        }
        if (semi < 0) { throw new XmlSyntaxError("unterminated entity"); }
        var entity = substr(raw, i + 1, semi - i - 1);
        if (entity == "lt") { out = out + "<"; }
        else if (entity == "gt") { out = out + ">"; }
        else if (entity == "amp") { out = out + "&"; }
        else if (entity == "quot") { out = out + "\""; }
        else if (entity == "apos") { out = out + "'"; }
        else { throw new XmlSyntaxError("unknown entity &" + entity + ";"); }
        i = semi + 1;
      } else {
        out = out + c;
        i = i + 1;
      }
    }
    return out;
  }
  method readName() throws XmlSyntaxError {
    var at = this.position;
    var name = "";
    while (at < len(this.input)) {
      var c = charAt(this.input, at);
      if (c == ">" || c == " " || c == "=" || c == "/" || c == "<"
          || c == "\"" || c == "\n" || c == "\t") {
        break;
      }
      name = name + c;
      at = at + 1;
    }
    if (name == "") { throw new XmlSyntaxError("empty name"); }
    this.position = at;
    return name;
  }
  method readText() throws XmlSyntaxError {
    var at = this.position;
    var text = "";
    while (at < len(this.input)) {
      var c = charAt(this.input, at);
      if (c == "<") { break; }
      text = text + c;
      at = at + 1;
    }
    var decoded = this.decodeEntities(text);
    this.position = at;
    return decoded;
  }
}

class XmlParser {
  field tokenizer;
  method init() {
    this.tokenizer = null;
    return this;
  }
  method parse(input) throws XmlSyntaxError, OutOfMemoryError {
    this.tokenizer = new XmlTokenizer(input);
    this.tokenizer.skipSpaces();
    var root = this.parseElement();
    this.tokenizer.skipSpaces();
    this.tokenizer = null;
    return root;
  }
  method parseElement() throws XmlSyntaxError, OutOfMemoryError {
    var t = this.tokenizer;
    t.expectChar("<");
    var node = new XmlNode(t.readName());
    this.parseAttributes(node);
    t.skipSpaces();
    if (t.peekChar() == "/") {
      t.expectChar("/");
      t.expectChar(">");
      return node;
    }
    t.expectChar(">");
    this.parseChildren(node);
    t.expectChar("<");
    t.expectChar("/");
    var closing = t.readName();
    if (closing != node.tag) {
      throw new XmlSyntaxError("mismatched tag " + closing + " vs " + node.tag);
    }
    t.expectChar(">");
    return node;
  }
  method parseAttributes(node) throws XmlSyntaxError, OutOfMemoryError {
    var t = this.tokenizer;
    t.skipSpaces();
    while (t.peekChar() != ">" && t.peekChar() != "/") {
      var name = t.readName();
      t.expectChar("=");
      t.expectChar("\"");
      var value = "";
      while (t.peekChar() != "\"") { value = value + t.nextChar(); }
      t.expectChar("\"");
      node.addAttr(name, t.decodeEntities(value));
      t.skipSpaces();
    }
    return null;
  }
  method parseChildren(node) throws XmlSyntaxError, OutOfMemoryError {
    var t = this.tokenizer;
    while (true) {
      var text = t.readText();
      if (text != "") { node.text = node.text + text; }
      if (t.peekChar() == "<") {
        if (this.peekIsClosing()) { return null; }
        node.addChild(this.parseElement());
      }
    }
    return null;
  }
  method peekIsClosing() throws XmlSyntaxError {
    var t = this.tokenizer;
    if (t.position + 1 >= len(t.input)) {
      throw new XmlSyntaxError("unexpected end inside element");
    }
    return charAt(t.input, t.position + 1) == "/";
  }
}
|}

(* Self*-style component substrate of the C++ suite: components wired
   into a pipeline, pushing items downstream. *)
let sc_lib =
  {|
// ---- shared Self*-style component substrate ------------------------
class ScComponent {
  field downstream;
  field name;
  method init(name) {
    this.name = name;
    this.downstream = null;
    return this;
  }
  method connect(next) {
    this.downstream = next;
    return this;
  }
  // Overridden by concrete components; base behavior forwards as-is.
  method consume(item) throws IllegalStateException {
    return this.emit(item);
  }
  // Conditional failure non-atomic: pure delegation downstream.
  method emit(item) throws IllegalStateException {
    if (this.downstream == null) {
      throw new IllegalStateException(this.name + ": no downstream");
    }
    return this.downstream.consume(item);
  }
}

class ScSink extends ScComponent {
  field received;
  field receivedCount;
  method init(name) {
    super.init(name);
    this.received = newArray(64);
    this.receivedCount = 0;
    return this;
  }
  method consume(item) throws IllegalStateException {
    if (this.receivedCount >= len(this.received)) {
      throw new IllegalStateException("sink overflow");
    }
    this.received[this.receivedCount] = item;
    this.receivedCount = this.receivedCount + 1;
    return null;
  }
  method itemAt(i) { return this.received[i]; }
}
|}
