(** LinkedList workload (Java suite) — the paper's §6.1 case study
    subject: a singly-linked list whose original version contains the
    mutate-before-throw defects the injector finds, and a repaired
    variant after the paper's "trivial modifications". *)

val name : string

val classes : string
(** The (defective) list classes without the driver. *)

val driver : string
(** The shared test driver ([main]). *)

val source : string
(** [classes ^ driver]: the Table-1 application. *)

val fixed_classes : string
(** The repaired classes of the case study. *)

val fixed_source : string
