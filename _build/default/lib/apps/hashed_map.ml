(* HashedMap workload (Java suite): an open-hashing map with chained
   buckets and load-factor driven rehashing, modelled on the Doug Lea
   collections HashedMap. *)

let name = "HashedMap"

(* The map classes are also reused by the HashedSet application — the
   paper notes that reuse causes some classes to be tested in several
   experiments. *)
let map_classes =
  Fragments.collections_base
  ^ {|
class MapEntry {
  field key;
  field value;
  field next;
  method init(k, v) {
    this.key = k;
    this.value = v;
    this.next = null;
    return this;
  }
}

class HashedMap extends AbstractContainer {
  field buckets;
  field threshold;
  field rehashes;
  method init(capacity) throws NegativeArraySizeException {
    super.init();
    this.buckets = newArray(capacity);
    this.threshold = capacity * 3 / 4;
    this.rehashes = 0;
    return this;
  }
  method bucketFor(k) {
    return hashCode(k) % len(this.buckets);
  }
  method findEntry(k) {
    var e = this.buckets[this.bucketFor(k)];
    while (e != null) {
      if (e.key == k) { return e; }
      e = e.next;
    }
    return null;
  }
  // Pure failure non-atomic: the size moves before the entry
  // allocation, and the rehash can be interrupted afterwards.
  method put(k, v) throws OutOfMemoryError {
    var existing = this.findEntry(k);
    if (existing != null) {
      var old = existing.value;
      existing.value = v;
      return old;
    }
    this.size = this.size + 1;
    var entry = new MapEntry(k, v);
    var b = this.bucketFor(k);
    entry.next = this.buckets[b];
    this.buckets[b] = entry;
    if (this.size > this.threshold) { this.rehash(); }
    return null;
  }
  // Pure failure non-atomic: the new (empty) table is committed
  // before the entries are carried over, so an interruption loses
  // entries — a classic rehash bug.
  method rehash() throws OutOfMemoryError {
    var old = this.buckets;
    this.buckets = newArray(len(old) * 2);
    this.threshold = len(this.buckets) * 3 / 4;
    this.rehashes = this.rehashes + 1;
    for (var i = 0; i < len(old); i = i + 1) {
      var e = old[i];
      while (e != null) {
        var carry = e.next;
        this.reinsert(e);
        e = carry;
      }
    }
    return null;
  }
  method reinsert(entry) {
    var b = this.bucketFor(entry.key);
    entry.next = this.buckets[b];
    this.buckets[b] = entry;
    return null;
  }
  method get(k) throws NoSuchElementException {
    var e = this.findEntry(k);
    this.requirePresent(e != null, "no mapping for " + k);
    return e.value;
  }
  method getOr(k, fallback) {
    var e = this.findEntry(k);
    if (e == null) { return fallback; }
    return e.value;
  }
  method containsKey(k) { return this.findEntry(k) != null; }
  // Failure atomic: locate first, then unlink and decrement.
  method remove(k) throws NoSuchElementException {
    var b = this.bucketFor(k);
    var e = this.buckets[b];
    var prev = null;
    while (e != null && e.key != k) {
      prev = e;
      e = e.next;
    }
    this.requirePresent(e != null, "remove of absent key " + k);
    if (prev == null) { this.buckets[b] = e.next; } else { prev.next = e.next; }
    this.size = this.size - 1;
    return e.value;
  }
  // Pure failure non-atomic: entry-by-entry bulk insertion.
  method putAll(keys, values) throws OutOfMemoryError {
    for (var i = 0; i < len(keys); i = i + 1) {
      this.put(keys[i], values[i]);
    }
    return null;
  }
  method keys() throws NegativeArraySizeException {
    var out = newArray(this.size);
    var at = 0;
    for (var i = 0; i < len(this.buckets); i = i + 1) {
      var e = this.buckets[i];
      while (e != null) {
        out[at] = e.key;
        at = at + 1;
        e = e.next;
      }
    }
    return out;
  }
  method clear() {
    for (var i = 0; i < len(this.buckets); i = i + 1) { this.buckets[i] = null; }
    this.size = 0;
    return null;
  }
}
|}

let source =
  map_classes
  ^ {|
function main() {
  var map = new HashedMap(4);
  map.put("alpha", 1);
  map.put("beta", 2);
  map.put("gamma", 3);
  map.put("delta", 4);
  map.put("epsilon", 5);
  check(map.count() == 5, "count after puts");
  check(map.rehashes >= 1, "rehashed");
  check(map.get("gamma") == 3, "get");
  check(map.containsKey("beta"), "containsKey");
  check(!map.containsKey("zeta"), "absent key");
  check(map.getOr("zeta", -1) == -1, "getOr fallback");
  map.put("beta", 20);
  check(map.get("beta") == 20, "overwrite");
  check(map.count() == 5, "overwrite keeps count");
  check(map.remove("alpha") == 1, "remove returns value");
  check(map.count() == 4, "count after remove");
  try {
    map.get("alpha");
  } catch (NoSuchElementException e) {
    println("get absent: " + e.message);
  }
  try {
    map.remove("alpha");
  } catch (NoSuchElementException e) {
    println("remove absent: " + e.message);
  }
  map.putAll(["k1", "k2", "k3"], [10, 20, 30]);
  check(map.count() == 7, "count after putAll");
  var keys = map.keys();
  check(len(keys) == 7, "keys length");
  map.clear();
  check(map.isEmpty(), "cleared");
  var census = new HashedMap(2);
  for (var i = 0; i < 18; i = i + 1) { census.put("key" + i, i * i); }
  check(census.count() == 18, "census count");
  check(census.rehashes >= 3, "census rehashed");
  var hits2 = 0;
  for (var round = 0; round < 3; round = round + 1) {
    for (var i = 0; i < 18; i = i + 1) {
      if (census.get("key" + i) == i * i) { hits2 = hits2 + 1; }
    }
  }
  check(hits2 == 54, "census reads");
  for (var i = 0; i < 9; i = i + 1) { census.remove("key" + (i * 2)); }
  check(census.count() == 9, "census after removals");
  println("final=" + map.count() + "/" + census.count());
  return 0;
}
|}
