(* xml2Ctcp workload (C++ suite): parses an XML document, converts the
   element tree into flat C-struct-like records, and ships them over a
   fake TCP stream in MTU-sized segments — modelled on the paper's
   Self* xml2Ctcp application. *)

let name = "xml2Ctcp"

let source =
  Fragments.xml_lib
  ^ {|
// A flat "C struct": name plus parallel field arrays.
class CRecord {
  field structName;
  field fieldNames;
  field fieldValues;
  field fieldCount;
  method init(structName) {
    this.structName = structName;
    this.fieldNames = newArray(8);
    this.fieldValues = newArray(8);
    this.fieldCount = 0;
    return this;
  }
  method addField(name, value) throws IllegalStateException {
    if (this.fieldCount >= len(this.fieldNames)) {
      throw new IllegalStateException("record full");
    }
    this.fieldNames[this.fieldCount] = name;
    this.fieldValues[this.fieldCount] = value;
    this.fieldCount = this.fieldCount + 1;
    return null;
  }
  method serialize() {
    var out = this.structName + "{";
    for (var i = 0; i < this.fieldCount; i = i + 1) {
      out = out + this.fieldNames[i] + "=" + this.fieldValues[i] + ";";
    }
    return out + "}";
  }
}

// Converts XML elements into CRecords, accumulating them in an output
// list.  The conversion walks the tree child by child: interrupting it
// leaves a partially converted document, so [convertTree] is pure
// failure non-atomic.
class Xml2CConverter {
  field records;
  field recordCount;
  field converted;
  method init() {
    this.records = newArray(32);
    this.recordCount = 0;
    this.converted = 0;
    return this;
  }
  method convertTree(root) throws IllegalStateException, OutOfMemoryError {
    this.converted = this.converted + 1;
    this.convertElement(root, "");
    return this.recordCount;
  }
  method convertElement(node, path) throws IllegalStateException, OutOfMemoryError {
    var record = new CRecord(path + node.tag);
    for (var i = 0; i < node.attrCount; i = i + 1) {
      record.addField(node.attrNames[i], node.attrValues[i]);
    }
    if (node.text != "") { record.addField("_text", node.text); }
    this.appendRecord(record);
    for (var i = 0; i < node.childCount; i = i + 1) {
      this.convertElement(node.children[i], path + node.tag + ".");
    }
    return null;
  }
  method appendRecord(record) throws IllegalStateException {
    if (this.recordCount >= len(this.records)) {
      throw new IllegalStateException("converter full");
    }
    this.records[this.recordCount] = record;
    this.recordCount = this.recordCount + 1;
    return null;
  }
  method recordAt(i) { return this.records[i]; }
}

// A fake TCP stream with an MTU: [send] fragments a serialized record
// into segments.  The sequence number moves before segments are
// queued, so an interrupted send leaves a half-transmitted record —
// pure failure non-atomic.
class FakeTcpStream {
  field segments;
  field segmentCount;
  field mtu;
  field seq;
  method init(mtu) {
    this.segments = newArray(128);
    this.segmentCount = 0;
    this.mtu = mtu;
    this.seq = 0;
    return this;
  }
  method send(data) throws IllegalStateException {
    this.seq = this.seq + 1;
    if (this.mtu <= 0) { throw new IllegalStateException("bad mtu " + this.mtu); }
    var offset = 0;
    while (offset < len(data)) {
      var take = min(this.mtu, len(data) - offset);
      this.pushSegment(substr(data, offset, take));
      offset = offset + take;
    }
    return this.seq;
  }
  method pushSegment(payload) throws IllegalStateException {
    if (this.segmentCount >= len(this.segments)) {
      throw new IllegalStateException("stream backlog full");
    }
    this.segments[this.segmentCount] = payload;
    this.segmentCount = this.segmentCount + 1;
    return null;
  }
  method reassemble() {
    var out = "";
    for (var i = 0; i < this.segmentCount; i = i + 1) {
      out = out + this.segments[i];
    }
    return out;
  }
}

function main() {
  var doc = "<config version=\"3\"><server host=\"a\" port=\"80\"><opt name=\"x\"/></server><client retry=\"2\">fallback</client></config>";
  var parser = new XmlParser();
  var root = parser.parse(doc);
  check(root.tag == "config", "root tag");
  check(root.childCount == 2, "two children");
  check(root.attr("version") == "3", "root attr");
  var server = root.childAt(0);
  check(server.attr("port") == "80", "server attr");
  check(server.childAt(0).attr("name") == "x", "nested attr");
  var converter = new Xml2CConverter();
  var n = converter.convertTree(root);
  check(n == 4, "four records");
  check(converter.recordAt(0).structName == "config", "record 0");
  check(converter.recordAt(1).structName == "config.server", "record path");
  var stream = new FakeTcpStream(10);
  for (var i = 0; i < n; i = i + 1) {
    stream.send(converter.recordAt(i).serialize());
  }
  check(stream.seq == 4, "four sends");
  check(stream.segmentCount > 4, "fragmented");
  var wire = stream.reassemble();
  check(len(wire) > 50, "wire size");
  try {
    parser.parse("<a><b></a>");
  } catch (XmlSyntaxError e) {
    println("syntax: " + e.message);
  }
  var tiny = new FakeTcpStream(0);
  try {
    tiny.send("xy");
  } catch (IllegalStateException e) {
    println("mtu: " + e.message);
  }
  check(tiny.seq == 1, "seq leaked by failed send");
  println("final=" + stream.segmentCount);
  return 0;
}
|}
