(* RBTree workload (Java suite): a red-black tree set over the shared
   RBEngine. *)

let name = "RBTree"

let source =
  Fragments.collections_base ^ Fragments.rb_engine
  ^ {|
class RBTree extends RBEngine {
  // Conditional failure non-atomic: delegation to insertNode.
  method insert(k) throws OutOfMemoryError {
    return this.insertNode(k, true);
  }
  method containsElem(k) { return this.findNode(k) != null; }
  method least() throws NoSuchElementException {
    return this.minimumFrom(this.root).key;
  }
  method toSortedArray() throws NegativeArraySizeException {
    var out = newArray(this.size);
    this.collectKeys(this.root, out, 0);
    return out;
  }
  // Pure failure non-atomic: element-by-element bulk insert.
  method insertAll(values) throws OutOfMemoryError {
    var added = 0;
    for (var i = 0; i < len(values); i = i + 1) {
      if (this.insert(values[i])) { added = added + 1; }
    }
    return added;
  }
  // Proper removal through the engine's rebalancing delete.
  method removeElem(k) {
    return this.deleteNode(k);
  }
  // Read-only structural validation: failure atomic.
  method validRedInvariant(node) {
    if (node == null) { return true; }
    if (node.isRed()) {
      if (node.left != null && node.left.isRed()) { return false; }
      if (node.right != null && node.right.isRed()) { return false; }
    }
    return this.validRedInvariant(node.left) && this.validRedInvariant(node.right);
  }
  method audit() throws IllegalStateException {
    if (!this.validRedInvariant(this.root)) {
      throw new IllegalStateException("red invariant violated");
    }
    if (this.countNodes(this.root) != this.size) {
      throw new IllegalStateException("size drift");
    }
    return true;
  }
}

function main() {
  var tree = new RBTree();
  check(tree.insertAll([13, 8, 17, 1, 11, 15, 25, 6, 22, 27]) == 10, "insertAll");
  check(tree.count() == 10, "count");
  check(tree.audit(), "audit after build");
  check(tree.containsElem(11), "contains 11");
  check(!tree.containsElem(12), "no 12");
  check(tree.least() == 1, "least");
  check(!tree.insert(17), "duplicate insert");
  check(tree.count() == 10, "duplicate keeps count");
  var sorted = tree.toSortedArray();
  check(sorted[0] == 1 && sorted[9] == 27, "sorted bounds");
  var ascending = true;
  for (var i = 1; i < len(sorted); i = i + 1) {
    if (sorted[i - 1] >= sorted[i]) { ascending = false; }
  }
  check(ascending, "sorted ascending");
  var empty = new RBTree();
  try {
    empty.least();
  } catch (NoSuchElementException e) {
    println("least empty: " + e.message);
  }
  check(tree.removeElem(13), "remove root region");
  check(tree.removeElem(1), "remove least");
  check(!tree.removeElem(99), "remove absent");
  check(tree.count() == 8, "count after removals");
  check(tree.audit(), "audit after removals");
  check(tree.least() == 6, "new least");
  check(tree.insertAll([1, 2, 3]) == 3, "refill");
  check(tree.audit(), "audit at end");
  println("final=" + tree.count());
  return 0;
}
|}
