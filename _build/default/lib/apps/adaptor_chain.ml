(* adaptorChain workload (C++ suite): a Self*-style data-flow chain of
   adaptor components pushing events toward a sink, modelled on the
   paper's Self* framework applications.  Because the downstream chain
   is reachable from every component's object graph, a half-forwarded
   batch shows up as receiver inconsistency in the upstream component —
   exactly the failure mode the paper's injector probes for. *)

let name = "adaptorChain"

let source =
  Fragments.sc_lib
  ^ {|
class Event {
  field key;
  field payload;
  method init(key, payload) {
    this.key = key;
    this.payload = payload;
    return this;
  }
}

// Keeps only events with even keys; the statistics counter moves
// before the event is forwarded, so [consume] is pure non-atomic.
class FilterAdaptor extends ScComponent {
  field dropped;
  field passed;
  method init(name) {
    super.init(name);
    this.dropped = 0;
    this.passed = 0;
    return this;
  }
  method consume(item) throws IllegalStateException {
    if (item.key % 2 != 0) {
      this.dropped = this.dropped + 1;
      return null;
    }
    this.passed = this.passed + 1;
    return this.emit(item);
  }
}

// Rewrites the payload into a fresh event: allocation happens before
// any state change, so this adaptor stays failure atomic.
class MapAdaptor extends ScComponent {
  field prefix;
  method init(name, prefix) {
    super.init(name);
    this.prefix = prefix;
    return this;
  }
  method consume(item) throws IllegalStateException, OutOfMemoryError {
    var mapped = new Event(item.key, this.prefix + item.payload);
    return this.emit(mapped);
  }
}

// Accumulates events and flushes them in groups; the flush loop
// forwards one event at a time and is pure non-atomic.
class BatchAdaptor extends ScComponent {
  field pending;
  field pendingCount;
  field batchSize;
  method init(name, batchSize) {
    super.init(name);
    this.pending = newArray(16);
    this.pendingCount = 0;
    this.batchSize = batchSize;
    return this;
  }
  method consume(item) throws IllegalStateException {
    this.pending[this.pendingCount] = item;
    this.pendingCount = this.pendingCount + 1;
    if (this.pendingCount >= this.batchSize) { return this.flush(); }
    return null;
  }
  method flush() throws IllegalStateException {
    var n = this.pendingCount;
    for (var i = 0; i < n; i = i + 1) {
      var item = this.pending[i];
      this.pending[i] = null;
      this.pendingCount = this.pendingCount - 1;
      this.emit(item);
    }
    return null;
  }
}

// Duplicates each event to two downstreams, alternating which one
// receives the copy first; the alternation index moves before the
// emits, so [consume] is pure non-atomic.
class RoundRobinAdaptor extends ScComponent {
  field second;
  field turn;
  method init(name) {
    super.init(name);
    this.second = null;
    this.turn = 0;
    return this;
  }
  method connectSecond(next) {
    this.second = next;
    return this;
  }
  method consume(item) throws IllegalStateException {
    this.turn = this.turn + 1;
    if (this.turn % 2 == 0) {
      if (this.second == null) { throw new IllegalStateException("no second"); }
      return this.second.consume(item);
    }
    return this.emit(item);
  }
}

// Counts events through itself: pure delegation plus a counter that is
// only bumped after the forward completes, hence failure atomic.
class CountingAdaptor extends ScComponent {
  field forwarded;
  method init(name) {
    super.init(name);
    this.forwarded = 0;
    return this;
  }
  method consume(item) throws IllegalStateException {
    this.emit(item);
    this.forwarded = this.forwarded + 1;
    return null;
  }
}

// Passes a bounded number of events, then drops the rest; the quota
// counter moves before the forward, so [consume] is pure non-atomic.
class ThrottleAdaptor extends ScComponent {
  field quota;
  field used;
  method init(name, quota) {
    super.init(name);
    this.quota = quota;
    this.used = 0;
    return this;
  }
  method consume(item) throws IllegalStateException {
    if (this.used >= this.quota) { return null; }
    this.used = this.used + 1;
    return this.emit(item);
  }
}

// Stamps each event with a sequence number into a fresh payload; the
// sequence moves before the forward: pure non-atomic.
class StampAdaptor extends ScComponent {
  field seq;
  method init(name) {
    super.init(name);
    this.seq = 0;
    return this;
  }
  method consume(item) throws IllegalStateException, OutOfMemoryError {
    this.seq = this.seq + 1;
    var stamped = new Event(item.key, item.payload + "#" + this.seq);
    return this.emit(stamped);
  }
}

// Routes by key threshold to one of two downstreams; stateless, so its
// non-atomicity is only what its downstreams leak: conditional.
class KeyRouterAdaptor extends ScComponent {
  field second;
  field threshold;
  method init(name, threshold) {
    super.init(name);
    this.second = null;
    this.threshold = threshold;
    return this;
  }
  method connectSecond(next) {
    this.second = next;
    return this;
  }
  method consume(item) throws IllegalStateException {
    if (item.key < this.threshold) { return this.emit(item); }
    if (this.second == null) { throw new IllegalStateException("no high route"); }
    return this.second.consume(item);
  }
}

function main() {
  var sinkA = new ScSink("sinkA");
  var sinkB = new ScSink("sinkB");
  var rr = new RoundRobinAdaptor("rr");
  rr.connect(sinkA);
  rr.connectSecond(sinkB);
  var batch = new BatchAdaptor("batch", 3);
  batch.connect(rr);
  var mapper = new MapAdaptor("map", "ev:");
  mapper.connect(batch);
  var filter = new FilterAdaptor("filter");
  filter.connect(mapper);
  var counter = new CountingAdaptor("count");
  counter.connect(filter);

  for (var i = 0; i < 12; i = i + 1) {
    counter.consume(new Event(i, "p" + i));
  }
  batch.flush();
  check(counter.forwarded == 12, "all events entered");
  check(filter.dropped == 6, "odd keys dropped");
  check(filter.passed == 6, "even keys passed");
  check(sinkA.receivedCount + sinkB.receivedCount == 6, "all delivered");
  check(sinkA.receivedCount == 3 && sinkB.receivedCount == 3, "round robin split");
  check(sinkA.itemAt(0).payload == "ev:p0", "mapped payload");
  var audits = 0;
  for (var round = 0; round < 6; round = round + 1) {
    for (var i = 0; i < sinkA.receivedCount; i = i + 1) {
      if (sinkA.itemAt(i).key % 2 == 0) { audits = audits + 1; }
    }
    for (var i = 0; i < sinkB.receivedCount; i = i + 1) {
      if (sinkB.itemAt(i).key % 2 == 0) { audits = audits + 1; }
    }
  }
  check(audits == 36, "audit reads");
  var lonely = new FilterAdaptor("lonely");
  try {
    lonely.consume(new Event(2, "x"));
  } catch (IllegalStateException e) {
    println("no downstream: " + e.message);
  }
  // second pipeline: stamp -> throttle -> route by key
  var low = new ScSink("low");
  var high = new ScSink("high");
  var router = new KeyRouterAdaptor("router", 5);
  router.connect(low);
  router.connectSecond(high);
  var throttle = new ThrottleAdaptor("throttle", 6);
  throttle.connect(router);
  var stamp = new StampAdaptor("stamp");
  stamp.connect(throttle);
  for (var i = 0; i < 9; i = i + 1) {
    stamp.consume(new Event(i, "q" + i));
  }
  check(stamp.seq == 9, "all stamped");
  check(throttle.used == 6, "throttled at quota");
  check(low.receivedCount == 5 && high.receivedCount == 1, "routed by key");
  check(low.itemAt(0).payload == "q0#1", "stamp visible");
  println("final=" + sinkA.receivedCount + "/" + sinkB.receivedCount
          + "/" + low.receivedCount + "/" + high.receivedCount);
  return 0;
}
|}
