(* HashedSet workload (Java suite): a set facade over HashedMap.  The
   map classes are reused verbatim, so this application mostly contains
   conditional failure non-atomic methods: the set delegates to the
   (non-atomic) map operations. *)

let name = "HashedSet"

let source =
  Hashed_map.map_classes
  ^ {|
class HashedSet {
  field map;
  method init(capacity) throws NegativeArraySizeException, OutOfMemoryError {
    this.map = new HashedMap(capacity);
    return this;
  }
  // Conditional failure non-atomic: pure delegation to HashedMap.put.
  method include(v) throws OutOfMemoryError {
    this.map.put(v, true);
    return null;
  }
  method exclude(v) throws NoSuchElementException {
    this.map.remove(v);
    return null;
  }
  method has(v) { return this.map.containsKey(v); }
  method cardinality() { return this.map.count(); }
  method isEmpty() { return this.map.isEmpty(); }
  // Pure failure non-atomic: element-by-element union.
  method includeAll(values) throws OutOfMemoryError {
    for (var i = 0; i < len(values); i = i + 1) {
      this.include(values[i]);
    }
    return null;
  }
  method toArray() throws NegativeArraySizeException {
    return this.map.keys();
  }
  method clear() {
    this.map.clear();
    return null;
  }
}

function main() {
  var set = new HashedSet(4);
  set.include("red");
  set.include("green");
  set.include("blue");
  set.include("red");
  check(set.cardinality() == 3, "cardinality dedupes");
  check(set.has("green"), "has green");
  check(!set.has("mauve"), "no mauve");
  set.exclude("green");
  check(!set.has("green"), "excluded");
  try {
    set.exclude("green");
  } catch (NoSuchElementException e) {
    println("exclude absent: " + e.message);
  }
  set.includeAll(["cyan", "magenta", "yellow", "black"]);
  check(set.cardinality() == 6, "cardinality after includeAll");
  var arr = set.toArray();
  check(len(arr) == 6, "toArray");
  set.clear();
  check(set.isEmpty(), "cleared");
  var tags = new HashedSet(2);
  for (var i = 0; i < 14; i = i + 1) { tags.include("tag" + (i % 7)); }
  check(tags.cardinality() == 7, "tags dedupe");
  var present = 0;
  for (var round = 0; round < 4; round = round + 1) {
    for (var i = 0; i < 7; i = i + 1) {
      if (tags.has("tag" + i)) { present = present + 1; }
    }
  }
  check(present == 28, "tag reads");
  println("final=" + set.cardinality() + "/" + tags.cardinality());
  return 0;
}
|}
