(** Recursive-descent parser for MiniLang. *)

exception Parse_error of string * Ast.pos

val program_of_string : string -> Ast.program
(** Parses a full compilation unit.
    @raise Parse_error on syntax errors
    @raise Lexer.Lex_error on lexical errors. *)

val expr_of_string : string -> Ast.expr
(** Parses a single expression (whole input must be consumed). *)
