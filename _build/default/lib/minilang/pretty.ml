(* Pretty-printer for MiniLang.

   The printer is the output side of the source-weaving pipeline: woven
   programs are ASTs, and users inspect them as source text.  The
   invariant checked by the test-suite is that printing then re-parsing
   yields the same tree (up to positions), so parenthesization must be
   exact with respect to the parser's precedence and associativity. *)

let binop_str = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Eq -> "=="
  | Ast.Neq -> "!="
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="

(* Precedence levels; [Or] lowest.  Must mirror {!Parser.precedence}. *)
let lvl_or = 10
let lvl_and = 20
let lvl_binop op =
  match op with
  | Ast.Eq | Ast.Neq -> 30
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> 40
  | Ast.Add | Ast.Sub -> 50
  | Ast.Mul | Ast.Div | Ast.Mod -> 60
let lvl_unary = 70
let lvl_postfix = 80

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\000' -> Buffer.add_string buf "\\0"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* [pp_expr min_lvl] parenthesizes whenever the expression's own level
   is below the level required by the context. *)
let rec pp_expr min_lvl ppf (e : Ast.expr) =
  let level =
    match e.Ast.e with
    | Ast.Or _ -> lvl_or
    | Ast.And _ -> lvl_and
    | Ast.Binary (op, _, _) -> lvl_binop op
    | Ast.Unary _ -> lvl_unary
    | Ast.Field _ | Ast.Index _ | Ast.Call _ -> lvl_postfix
    | Ast.Int_lit _ | Ast.Str_lit _ | Ast.Bool_lit _ | Ast.Null_lit | Ast.This
    | Ast.Var _ | Ast.Super_call _ | Ast.Fn_call _ | Ast.New _ | Ast.Array_lit _ ->
      100
  in
  let atom ppf () =
    match e.Ast.e with
    | Ast.Int_lit n -> Fmt.int ppf n
    | Ast.Str_lit s -> Fmt.pf ppf "\"%s\"" (escape_string s)
    | Ast.Bool_lit b -> Fmt.bool ppf b
    | Ast.Null_lit -> Fmt.string ppf "null"
    | Ast.This -> Fmt.string ppf "this"
    | Ast.Var x -> Fmt.string ppf x
    (* '||' and '&&' parse right-associatively: the left operand must be
       parenthesized when it is the same connective. *)
    | Ast.Or (a, b) ->
      Fmt.pf ppf "%a || %a" (pp_expr (lvl_or + 1)) a (pp_expr lvl_or) b
    | Ast.And (a, b) ->
      Fmt.pf ppf "%a && %a" (pp_expr (lvl_and + 1)) a (pp_expr lvl_and) b
    | Ast.Binary (op, a, b) ->
      let l = lvl_binop op in
      Fmt.pf ppf "%a %s %a" (pp_expr l) a (binop_str op) (pp_expr (l + 1)) b
    | Ast.Unary (Ast.Neg, a) -> Fmt.pf ppf "-%a" (pp_expr lvl_unary) a
    | Ast.Unary (Ast.Not, a) -> Fmt.pf ppf "!%a" (pp_expr lvl_unary) a
    | Ast.Field (r, f) -> Fmt.pf ppf "%a.%s" (pp_expr lvl_postfix) r f
    | Ast.Index (r, i) -> Fmt.pf ppf "%a[%a]" (pp_expr lvl_postfix) r (pp_expr 0) i
    | Ast.Call (r, m, args) ->
      Fmt.pf ppf "%a.%s(%a)" (pp_expr lvl_postfix) r m pp_args args
    | Ast.Super_call (m, args) -> Fmt.pf ppf "super.%s(%a)" m pp_args args
    | Ast.Fn_call (f, args) -> Fmt.pf ppf "%s(%a)" f pp_args args
    | Ast.New (c, args) -> Fmt.pf ppf "new %s(%a)" c pp_args args
    | Ast.Array_lit elems -> Fmt.pf ppf "[%a]" pp_args elems
  in
  if level < min_lvl then Fmt.pf ppf "(%a)" atom () else atom ppf ()

and pp_args ppf args = Fmt.(list ~sep:(any ", ") (pp_expr 0)) ppf args

let pp_lvalue ppf = function
  | Ast.Lvar x -> Fmt.string ppf x
  | Ast.Lfield (r, f) -> Fmt.pf ppf "%a.%s" (pp_expr lvl_postfix) r f
  | Ast.Lindex (r, i) -> Fmt.pf ppf "%a[%a]" (pp_expr lvl_postfix) r (pp_expr 0) i

let indent_str n = String.make (2 * n) ' '

let rec pp_stmt ind ppf (st : Ast.stmt) =
  let pad = indent_str ind in
  match st.Ast.s with
  | Ast.Var_decl (x, e) -> Fmt.pf ppf "%svar %s = %a;" pad x (pp_expr 0) e
  | Ast.Assign (l, e) -> Fmt.pf ppf "%s%a = %a;" pad pp_lvalue l (pp_expr 0) e
  | Ast.Expr_stmt e -> Fmt.pf ppf "%s%a;" pad (pp_expr 0) e
  | Ast.If (c, t, f) ->
    Fmt.pf ppf "%sif (%a) %a" pad (pp_expr 0) c (pp_block ind) t;
    (match f with
     | [] -> ()
     | [ ({ Ast.s = Ast.If _; _ } as nested) ] ->
       Fmt.pf ppf " else %s" (String.trim (Fmt.str "%a" (pp_stmt ind) nested))
     | _ -> Fmt.pf ppf " else %a" (pp_block ind) f)
  | Ast.While (c, b) -> Fmt.pf ppf "%swhile (%a) %a" pad (pp_expr 0) c (pp_block ind) b
  | Ast.For (init, cond, update, b) ->
    let pp_header_stmt ppf s =
      (* headers are printed without the trailing ';' or indentation *)
      let text = String.trim (Fmt.str "%a" (pp_stmt 0) s) in
      let text =
        if String.length text > 0 && text.[String.length text - 1] = ';' then
          String.sub text 0 (String.length text - 1)
        else text
      in
      Fmt.string ppf text
    in
    Fmt.pf ppf "%sfor (%a; %a; %a) %a" pad
      Fmt.(option pp_header_stmt) init
      Fmt.(option (pp_expr 0)) cond
      Fmt.(option pp_header_stmt) update
      (pp_block ind) b
  | Ast.Return None -> Fmt.pf ppf "%sreturn;" pad
  | Ast.Return (Some e) -> Fmt.pf ppf "%sreturn %a;" pad (pp_expr 0) e
  | Ast.Throw e -> Fmt.pf ppf "%sthrow %a;" pad (pp_expr 0) e
  | Ast.Try (b, catches, fin) ->
    Fmt.pf ppf "%stry %a" pad (pp_block ind) b;
    List.iter
      (fun { Ast.cc_class; cc_var; cc_body } ->
        Fmt.pf ppf " catch (%s %s) %a" cc_class cc_var (pp_block ind) cc_body)
      catches;
    (match fin with
     | None -> ()
     | Some f -> Fmt.pf ppf " finally %a" (pp_block ind) f)
  | Ast.Break -> Fmt.pf ppf "%sbreak;" pad
  | Ast.Continue -> Fmt.pf ppf "%scontinue;" pad
  | Ast.Block b -> Fmt.pf ppf "%s%a" pad (pp_block ind) b

and pp_block ind ppf (b : Ast.block) =
  if b = [] then Fmt.string ppf "{ }"
  else begin
    Fmt.pf ppf "{\n";
    List.iter (fun st -> Fmt.pf ppf "%a\n" (pp_stmt (ind + 1)) st) b;
    Fmt.pf ppf "%s}" (indent_str ind)
  end

let pp_method ind ppf (m : Ast.meth_decl) =
  let pad = indent_str ind in
  let pp_throws ppf = function
    | [] -> ()
    | names -> Fmt.pf ppf " throws %s" (String.concat ", " names)
  in
  Fmt.pf ppf "%smethod %s(%s)%a %a" pad m.Ast.m_name
    (String.concat ", " m.Ast.m_params)
    pp_throws m.Ast.m_throws (pp_block ind) m.Ast.m_body

let pp_class ppf (c : Ast.class_decl) =
  let pp_super ppf = function
    | None -> ()
    | Some s -> Fmt.pf ppf " extends %s" s
  in
  Fmt.pf ppf "class %s%a {\n" c.Ast.c_name pp_super c.Ast.c_super;
  List.iter (fun f -> Fmt.pf ppf "  field %s;\n" f) c.Ast.c_fields;
  List.iter (fun m -> Fmt.pf ppf "%a\n" (pp_method 1) m) c.Ast.c_methods;
  Fmt.pf ppf "}"

let pp_func ppf (f : Ast.func_decl) =
  Fmt.pf ppf "function %s(%s) %a" f.Ast.f_name
    (String.concat ", " f.Ast.f_params)
    (pp_block 0) f.Ast.f_body

let pp_decl ppf = function
  | Ast.Class_decl c -> pp_class ppf c
  | Ast.Func_decl f -> pp_func ppf f

let pp_program ppf (p : Ast.program) =
  List.iter (fun d -> Fmt.pf ppf "%a\n\n" pp_decl d) p

let program_to_string p = Fmt.str "%a" pp_program p
let expr_to_string e = Fmt.str "%a" (pp_expr 0) e
let stmt_to_string st = Fmt.str "%a" (pp_stmt 0) st
