(** Pretty-printer for MiniLang.

    The output side of the source-weaving pipeline: woven programs are
    ASTs, and users inspect them as source text.  Invariant (enforced by
    the test-suite): printing then re-parsing yields the same tree up to
    positions, so parenthesization exactly respects the parser's
    precedence and associativity. *)

val binop_str : Ast.binop -> string

val pp_program : Ast.program Fmt.t
val pp_decl : Ast.decl Fmt.t
val pp_method : int -> Ast.meth_decl Fmt.t
val pp_stmt : int -> Ast.stmt Fmt.t
(** Statements/methods are printed at the given indentation depth. *)

val program_to_string : Ast.program -> string
val expr_to_string : Ast.expr -> string
val stmt_to_string : Ast.stmt -> string
