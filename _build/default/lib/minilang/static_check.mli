(** Static well-formedness checks for MiniLang programs.

    MiniLang is dynamically typed, but structural defects — duplicate or
    unknown names, inheritance cycles, misplaced [this]/[super]/
    [break], bad arities, reserved ["__"] identifiers — are rejected
    before a program reaches the injection pipeline, where they would
    otherwise surface as bogus non-atomicity reports. *)

type error = { message : string; pos : Ast.pos }

exception Check_error of error list

val pp_error : error Fmt.t

val check : ?allow_reserved:bool -> Ast.program -> unit
(** Checks the whole program; collects all errors before raising.
    [allow_reserved] permits ["__"]-prefixed identifiers and hook calls
    (set when checking programs produced by the weaver).
    @raise Check_error when any defect is found. *)
