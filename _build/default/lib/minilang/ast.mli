(** Abstract syntax of MiniLang.

    MiniLang stands in for the C++/Java sources of the paper: classes
    with single inheritance, mutable fields, methods with declared
    [throws] clauses, [try]/[catch]/[finally], and reference semantics
    for objects and arrays.  The weaving engine rewrites these trees
    (source-code transformation, the paper's AspectC++ path), so the AST
    round-trips through {!Pretty} and {!Parser}. *)

type pos = { line : int; col : int }

val dummy_pos : pos
val pp_pos : pos Fmt.t

type binop = Add | Sub | Mul | Div | Mod | Eq | Neq | Lt | Le | Gt | Ge
type unop = Neg | Not

type expr = { e : expr_desc; epos : pos }

and expr_desc =
  | Int_lit of int
  | Str_lit of string
  | Bool_lit of bool
  | Null_lit
  | This
  | Var of string
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Field of expr * string
  | Index of expr * expr
  | Call of expr * string * expr list  (** receiver.method(args) *)
  | Super_call of string * expr list
  | Fn_call of string * expr list  (** free function, builtin or hook *)
  | New of string * expr list
  | Array_lit of expr list

type lvalue =
  | Lvar of string
  | Lfield of expr * string
  | Lindex of expr * expr

type stmt = { s : stmt_desc; spos : pos }

and stmt_desc =
  | Var_decl of string * expr
  | Assign of lvalue * expr
  | Expr_stmt of expr
  | If of expr * block * block
  | While of expr * block
  | For of stmt option * expr option * stmt option * block
  | Return of expr option
  | Throw of expr
  | Try of block * catch_clause list * block option
  | Break
  | Continue
  | Block of block

and block = stmt list

and catch_clause = { cc_class : string; cc_var : string; cc_body : block }

type meth_decl = {
  m_name : string;
  m_params : string list;
  m_throws : string list;
  m_body : block;
  m_pos : pos;
}

type class_decl = {
  c_name : string;
  c_super : string option;
  c_fields : string list;
  c_methods : meth_decl list;
  c_pos : pos;
}

type func_decl = {
  f_name : string;
  f_params : string list;
  f_body : block;
  f_pos : pos;
}

type decl = Class_decl of class_decl | Func_decl of func_decl
type program = decl list

(** {1 Constructors}
    Convenience builders (at {!dummy_pos}) used by the source weaver. *)

val mk_expr : expr_desc -> expr
val mk_stmt : stmt_desc -> stmt
val var : string -> expr
val this_e : expr
val call : expr -> string -> expr list -> expr
val fn_call : string -> expr list -> expr
val str_lit : string -> expr

(** {1 Position-insensitive equality} *)

val strip_expr : expr -> expr
val strip_stmt : stmt -> stmt
val strip_block : block -> block
val strip_program : program -> program

val equal_program : program -> program -> bool
(** Structural equality ignoring positions (the parse/pretty round-trip
    invariant). *)
