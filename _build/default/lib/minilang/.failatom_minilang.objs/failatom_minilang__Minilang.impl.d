lib/minilang/minilang.ml: Compile Failatom_runtime Parser Static_check Vm
