lib/minilang/builtins.mli: Failatom_runtime Value Vm
