lib/minilang/pretty.ml: Ast Buffer Fmt List String
