lib/minilang/lexer.mli: Ast
