lib/minilang/ast.mli: Fmt
