lib/minilang/minilang.mli: Ast Failatom_runtime Value Vm
