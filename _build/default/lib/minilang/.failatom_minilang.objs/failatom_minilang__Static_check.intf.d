lib/minilang/static_check.mli: Ast Fmt
