lib/minilang/parser.mli: Ast
