lib/minilang/builtins.ml: Array Char Failatom_runtime Hashtbl Heap List Object_graph Printf String Value Vm
