lib/minilang/static_check.ml: Ast Builtins Failatom_runtime Fmt Hashtbl List Option String Vm
