lib/minilang/lexer.ml: Ast Buffer List Printf String
