lib/minilang/compile.mli: Ast Failatom_runtime Value Vm
