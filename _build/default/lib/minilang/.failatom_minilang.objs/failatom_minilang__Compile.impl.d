lib/minilang/compile.ml: Array Ast Builtins Failatom_runtime Fmt Fun Hashtbl Heap List Option Pretty Printf String Value Vm
