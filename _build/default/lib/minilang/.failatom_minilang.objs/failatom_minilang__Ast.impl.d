lib/minilang/ast.ml: Fmt List Option
