(** Compiles MiniLang programs into a {!Vm.t} and interprets them.

    Methods compile to closures stored in the VM's class table, so that
    load-time interposition (attaching filters to method entries) works
    on compiled programs without source access — the analog of the
    paper's bytecode-level JWG instrumentation. *)

open Failatom_runtime

exception Runtime_error of string * Ast.pos
(** A genuine defect in the interpreted program (unknown variable, bad
    arity, type confusion, ...), as opposed to a MiniLang-level
    exception, which is raised as {!Vm.Mini_raise} and is catchable
    in-language. *)

val program : Ast.program -> Vm.t
(** Builds a fresh VM for the program.  Each detection run compiles its
    own VM, guaranteeing independent heaps across runs. *)

val run_main : Vm.t -> Value.t
(** Runs the program's [main] function and returns its value.
    @raise Invalid_argument if there is no [main]
    @raise Vm.Mini_raise if an exception escapes [main]. *)
