(* Compiles a MiniLang program into a {!Vm.t} and interprets it.

   Methods are compiled to closures stored in the VM's class table, so
   that load-time interposition (attaching filters to method entries)
   works on compiled programs without source access — the analog of the
   paper's bytecode-level JWG instrumentation.  Each injection run of
   the detection phase compiles a fresh VM, guaranteeing independent
   heaps across runs. *)

open Failatom_runtime

(* A genuine defect in the interpreted program (unknown variable, bad
   arity, ...) as opposed to a MiniLang-level exception, which is raised
   as {!Vm.Mini_raise} and is catchable in-language. *)
exception Runtime_error of string * Ast.pos

let runtime_error pos fmt = Fmt.kstr (fun s -> raise (Runtime_error (s, pos))) fmt

(* Non-local control flow within a method body. *)
exception Return_value of Value.t
exception Break_loop
exception Continue_loop

type frame = { vars : (string, Value.t ref) Hashtbl.t; mutable this : Value.t }

let frame_create this =
  { vars = Hashtbl.create 16; this }

let frame_roots frame () =
  frame.this :: Hashtbl.fold (fun _ r acc -> !r :: acc) frame.vars []

let declare frame name v = Hashtbl.replace frame.vars name (ref v)

let lookup_var frame pos name =
  match Hashtbl.find_opt frame.vars name with
  | Some r -> r
  | None -> runtime_error pos "unknown variable %s" name

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

let eval_binop vm pos op (a : Value.t) (b : Value.t) : Value.t =
  match op, a, b with
  | Ast.Add, Value.Int x, Value.Int y -> Value.Int (x + y)
  | Ast.Add, Value.Str x, y -> Value.Str (x ^ Value.to_display_string y)
  | Ast.Add, x, Value.Str y -> Value.Str (Value.to_display_string x ^ y)
  | Ast.Sub, Value.Int x, Value.Int y -> Value.Int (x - y)
  | Ast.Mul, Value.Int x, Value.Int y -> Value.Int (x * y)
  | Ast.Div, Value.Int x, Value.Int y ->
    if y = 0 then Vm.throw vm "ArithmeticException" "division by zero"
    else Value.Int (x / y)
  | Ast.Mod, Value.Int x, Value.Int y ->
    if y = 0 then Vm.throw vm "ArithmeticException" "modulo by zero"
    else Value.Int (x mod y)
  | Ast.Eq, x, y -> Value.Bool (Value.equal x y)
  | Ast.Neq, x, y -> Value.Bool (not (Value.equal x y))
  | Ast.Lt, Value.Int x, Value.Int y -> Value.Bool (x < y)
  | Ast.Le, Value.Int x, Value.Int y -> Value.Bool (x <= y)
  | Ast.Gt, Value.Int x, Value.Int y -> Value.Bool (x > y)
  | Ast.Ge, Value.Int x, Value.Int y -> Value.Bool (x >= y)
  | Ast.Lt, Value.Str x, Value.Str y -> Value.Bool (String.compare x y < 0)
  | Ast.Le, Value.Str x, Value.Str y -> Value.Bool (String.compare x y <= 0)
  | Ast.Gt, Value.Str x, Value.Str y -> Value.Bool (String.compare x y > 0)
  | Ast.Ge, Value.Str x, Value.Str y -> Value.Bool (String.compare x y >= 0)
  | (Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod
    | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), x, y ->
    runtime_error pos "operator %s not defined on %s and %s"
      (Pretty.binop_str op) (Value.type_name x) (Value.type_name y)

let get_obj_field vm pos recv field =
  match (recv : Value.t) with
  | Value.Null -> Vm.throw vm "NullPointerException" ("read of field " ^ field ^ " on null")
  | Value.Ref id -> (
    match Heap.get_field vm.Vm.heap id field with
    | Some v -> v
    | None -> (
      match Heap.class_of vm.Vm.heap id with
      | Some cls -> runtime_error pos "class %s has no field %s" cls field
      | None -> runtime_error pos "arrays have no fields (reading %s)" field))
  | v -> runtime_error pos "field read %s on %s" field (Value.type_name v)

let set_obj_field vm pos recv field v =
  match (recv : Value.t) with
  | Value.Null -> Vm.throw vm "NullPointerException" ("write of field " ^ field ^ " on null")
  | Value.Ref id ->
    if Heap.get_field vm.Vm.heap id field = None then (
      match Heap.class_of vm.Vm.heap id with
      | Some cls -> runtime_error pos "class %s has no field %s" cls field
      | None -> runtime_error pos "arrays have no fields (writing %s)" field)
    else Heap.set_field vm.Vm.heap id field v
  | v -> runtime_error pos "field write %s on %s" field (Value.type_name v)

let get_index vm pos recv idx =
  match (recv : Value.t), (idx : Value.t) with
  | Value.Null, _ -> Vm.throw vm "NullPointerException" "index read on null"
  | Value.Ref id, Value.Int i -> (
    match Heap.get_elem vm.Vm.heap id i with
    | Some v -> v
    | None -> (
      match Heap.array_length vm.Vm.heap id with
      | Some n ->
        Vm.throw vm "IndexOutOfBoundsException" (Printf.sprintf "index %d of %d" i n)
      | None -> runtime_error pos "indexing a non-array object"))
  | Value.Ref _, v -> runtime_error pos "array index must be int, got %s" (Value.type_name v)
  | v, _ -> runtime_error pos "indexing %s" (Value.type_name v)

let set_index vm pos recv idx v =
  match (recv : Value.t), (idx : Value.t) with
  | Value.Null, _ -> Vm.throw vm "NullPointerException" "index write on null"
  | Value.Ref id, Value.Int i -> (
    match Heap.array_length vm.Vm.heap id with
    | Some n ->
      if not (Heap.set_elem vm.Vm.heap id i v) then
        Vm.throw vm "IndexOutOfBoundsException" (Printf.sprintf "index %d of %d" i n)
    | None -> runtime_error pos "indexing a non-array object")
  | Value.Ref _, w -> runtime_error pos "array index must be int, got %s" (Value.type_name w)
  | v, _ -> runtime_error pos "indexing %s" (Value.type_name v)

(* Instantiates class [cls]: allocates the object with all (inherited)
   fields set to null, then runs the [init] method if the class defines
   or inherits one.  [init] is an ordinary method: it is counted,
   filtered and woven like any other (the paper injects into
   constructor calls too). *)
let rec instantiate vm pos cls args =
  if not (Vm.class_exists vm cls) then runtime_error pos "unknown class %s" cls;
  let fields = List.map (fun f -> (f, Value.Null)) (Vm.all_fields vm cls) in
  let id = Heap.alloc_object vm.Vm.heap ~cls fields in
  let recv = Value.Ref id in
  (match Vm.lookup_method vm cls "init" with
   | Some _ -> ignore (Vm.invoke vm recv "init" args)
   | None -> (
     (* Built-in exception classes have no init; a single string
        argument sets the message field, as in Java's Throwable. *)
     match args with
     | [] -> ()
     | [ Value.Str m ] when Vm.is_exception_class vm cls ->
       Heap.set_field vm.Vm.heap id "message" (Value.Str m)
     | _ -> runtime_error pos "class %s has no init method" cls));
  recv

and eval vm frame (e : Ast.expr) : Value.t =
  Vm.tick vm;
  let pos = e.Ast.epos in
  match e.Ast.e with
  | Ast.Int_lit n -> Value.Int n
  | Ast.Str_lit s -> Value.Str s
  | Ast.Bool_lit b -> Value.Bool b
  | Ast.Null_lit -> Value.Null
  | Ast.This -> frame.this
  | Ast.Var x -> !(lookup_var frame pos x)
  | Ast.Unary (Ast.Neg, a) -> (
    match eval vm frame a with
    | Value.Int n -> Value.Int (-n)
    | v -> runtime_error pos "negation of %s" (Value.type_name v))
  | Ast.Unary (Ast.Not, a) -> Value.Bool (not (Value.truthy (eval vm frame a)))
  | Ast.Binary (op, a, b) ->
    let va = eval vm frame a in
    let vb = eval vm frame b in
    eval_binop vm pos op va vb
  | Ast.And (a, b) ->
    if Value.truthy (eval vm frame a) then Value.Bool (Value.truthy (eval vm frame b))
    else Value.Bool false
  | Ast.Or (a, b) ->
    if Value.truthy (eval vm frame a) then Value.Bool true
    else Value.Bool (Value.truthy (eval vm frame b))
  | Ast.Field (r, f) -> get_obj_field vm pos (eval vm frame r) f
  | Ast.Index (r, i) ->
    let recv = eval vm frame r in
    let idx = eval vm frame i in
    get_index vm pos recv idx
  | Ast.Call (r, m, args) ->
    let recv = eval vm frame r in
    let vargs = List.map (eval vm frame) args in
    Vm.invoke vm recv m vargs
  | Ast.Super_call (m, args) -> (
    (* Static dispatch starting above the defining class of the
       currently executing method; the defining class is recorded in the
       frame under a reserved name by [compile_method]. *)
    let defining =
      match Hashtbl.find_opt frame.vars "__defining_class" with
      | Some { contents = Value.Str c } -> c
      | _ -> runtime_error pos "super call outside of a method"
    in
    let super =
      match (Vm.find_class vm defining).Vm.super with
      | Some s -> s
      | None -> runtime_error pos "class %s has no superclass" defining
    in
    match Vm.lookup_method vm super m with
    | Some meth ->
      let vargs = List.map (eval vm frame) args in
      Vm.call_filtered vm meth frame.this vargs
    | None -> runtime_error pos "no method %s in superclasses of %s" m defining)
  | Ast.Fn_call (name, args) ->
    let vargs = List.map (eval vm frame) args in
    call_function vm pos name vargs
  | Ast.New (cls, args) ->
    let vargs = List.map (eval vm frame) args in
    instantiate vm pos cls vargs
  | Ast.Array_lit elems ->
    let values = List.map (eval vm frame) elems in
    Value.Ref (Heap.alloc_array vm.Vm.heap (Array.of_list values))

and call_function vm pos name args =
  (* Reflective hooks (double-underscore names) are registered by the
     detection/masking engine and take precedence; then user functions;
     then builtins. *)
  match Vm.find_hook vm name with
  | Some hook -> hook vm args
  | None -> (
    match Hashtbl.find_opt vm.Vm.functions name with
    | Some fn ->
      if List.length args <> List.length fn.Vm.fn_params then
        runtime_error pos "function %s expects %d argument(s), got %d" name
          (List.length fn.Vm.fn_params) (List.length args)
      else fn.Vm.fn_impl vm args
    | None ->
      if Builtins.exists name then (
        try Builtins.call vm name args
        with Invalid_argument msg -> runtime_error pos "%s" msg)
      else runtime_error pos "unknown function %s" name)

(* ------------------------------------------------------------------ *)
(* Statement execution                                                 *)
(* ------------------------------------------------------------------ *)

and exec vm frame (st : Ast.stmt) : unit =
  Vm.tick vm;
  let pos = st.Ast.spos in
  match st.Ast.s with
  | Ast.Var_decl (x, e) -> declare frame x (eval vm frame e)
  | Ast.Assign (Ast.Lvar x, e) -> lookup_var frame pos x := eval vm frame e
  | Ast.Assign (Ast.Lfield (r, f), e) ->
    let recv = eval vm frame r in
    let v = eval vm frame e in
    set_obj_field vm pos recv f v
  | Ast.Assign (Ast.Lindex (r, i), e) ->
    let recv = eval vm frame r in
    let idx = eval vm frame i in
    let v = eval vm frame e in
    set_index vm pos recv idx v
  | Ast.Expr_stmt e -> ignore (eval vm frame e)
  | Ast.If (c, t, f) ->
    if Value.truthy (eval vm frame c) then exec_block vm frame t
    else exec_block vm frame f
  | Ast.While (c, body) ->
    (try
       while Value.truthy (eval vm frame c) do
         try exec_block vm frame body with Continue_loop -> ()
       done
     with Break_loop -> ())
  | Ast.For (init, cond, update, body) ->
    Option.iter (exec vm frame) init;
    let continue_cond () =
      match cond with None -> true | Some c -> Value.truthy (eval vm frame c)
    in
    (try
       while continue_cond () do
         (try exec_block vm frame body with Continue_loop -> ());
         Option.iter (exec vm frame) update
       done
     with Break_loop -> ())
  | Ast.Return None -> raise (Return_value Value.Null)
  | Ast.Return (Some e) -> raise (Return_value (eval vm frame e))
  | Ast.Throw e -> (
    match eval vm frame e with
    | Value.Ref id as obj -> (
      match Heap.class_of vm.Vm.heap id with
      | Some cls when Vm.is_exception_class vm cls ->
        let message =
          match Heap.get_field vm.Vm.heap id "message" with
          | Some (Value.Str m) -> m
          | Some _ | None -> ""
        in
        raise (Vm.Mini_raise { Vm.exn_class = cls; message; exn_obj = obj })
      | Some cls -> runtime_error pos "throw of non-exception class %s" cls
      | None -> runtime_error pos "throw of an array")
    | v -> runtime_error pos "throw of %s" (Value.type_name v))
  | Ast.Try (body, catches, fin) ->
    let outcome =
      try
        exec_block vm frame body;
        `Done
      with
      | Vm.Mini_raise exn_v -> `Raised exn_v
      | Return_value v -> `Returned v
      | (Break_loop | Continue_loop) as flow -> `Flow flow
    in
    let handled =
      match outcome with
      | `Raised exn_v -> (
        match
          List.find_opt (fun c -> Vm.exn_matches vm exn_v c.Ast.cc_class) catches
        with
        | Some clause -> (
          declare frame clause.Ast.cc_var exn_v.Vm.exn_obj;
          try
            exec_block vm frame clause.Ast.cc_body;
            `Done
          with
          | Vm.Mini_raise e -> `Raised e
          | Return_value v -> `Returned v
          | (Break_loop | Continue_loop) as flow -> `Flow flow)
        | None -> outcome)
      | `Done | `Returned _ | `Flow _ -> outcome
    in
    (* As in Java: the finally block runs last and, if it completes
       abruptly, its outcome supersedes the pending one. *)
    Option.iter (exec_block vm frame) fin;
    (match handled with
     | `Done -> ()
     | `Raised e -> raise (Vm.Mini_raise e)
     | `Returned v -> raise (Return_value v)
     | `Flow f -> raise f)
  | Ast.Break -> raise Break_loop
  | Ast.Continue -> raise Continue_loop
  | Ast.Block b -> exec_block vm frame b

and exec_block vm frame b = List.iter (exec vm frame) b

(* ------------------------------------------------------------------ *)
(* Program compilation                                                 *)
(* ------------------------------------------------------------------ *)

let run_body vm frame body =
  vm.Vm.frame_roots <- frame_roots frame :: vm.Vm.frame_roots;
  Fun.protect
    ~finally:(fun () ->
      match vm.Vm.frame_roots with
      | _ :: rest -> vm.Vm.frame_roots <- rest
      | [] -> ())
    (fun () ->
      try
        exec_block vm frame body;
        Value.Null
      with Return_value v -> v)

let compile_method vm cls_name (m : Ast.meth_decl) =
  let impl vm this args =
    if List.length args <> List.length m.Ast.m_params then
      runtime_error m.Ast.m_pos "method %s.%s expects %d argument(s), got %d"
        cls_name m.Ast.m_name (List.length m.Ast.m_params) (List.length args);
    let frame = frame_create this in
    declare frame "__defining_class" (Value.Str cls_name);
    List.iter2 (declare frame) m.Ast.m_params args;
    run_body vm frame m.Ast.m_body
  in
  ignore
    (Vm.add_method vm cls_name ~name:m.Ast.m_name ~params:m.Ast.m_params
       ~throws:m.Ast.m_throws impl)

let compile_function vm (f : Ast.func_decl) =
  let fn_impl vm args =
    let frame = frame_create Value.Null in
    List.iter2 (declare frame) f.Ast.f_params args;
    run_body vm frame f.Ast.f_body
  in
  Hashtbl.replace vm.Vm.functions f.Ast.f_name
    { Vm.fn_name = f.Ast.f_name; fn_params = f.Ast.f_params; fn_impl }

(* Builds a fresh VM for [program].  Class declarations are installed in
   two passes so that methods can reference classes declared later. *)
let program (prog : Ast.program) : Vm.t =
  let vm = Vm.create () in
  List.iter
    (fun decl ->
      match decl with
      | Ast.Class_decl c -> ignore (Vm.add_class vm ?super:c.Ast.c_super ~fields:c.Ast.c_fields c.Ast.c_name)
      | Ast.Func_decl _ -> ())
    prog;
  List.iter
    (fun decl ->
      match decl with
      | Ast.Class_decl c -> List.iter (compile_method vm c.Ast.c_name) c.Ast.c_methods
      | Ast.Func_decl f -> compile_function vm f)
    prog;
  vm

(* Runs the program's [main] function; returns its value. *)
let run_main vm =
  match Hashtbl.find_opt vm.Vm.functions "main" with
  | Some fn -> fn.Vm.fn_impl vm []
  | None -> invalid_arg "program has no main function"
