(* Abstract syntax of MiniLang, the class-based language in which the
   instrumented applications are written.

   MiniLang stands in for the C++/Java sources of the paper: classes
   with single inheritance, mutable fields, methods with declared
   [throws] clauses, [try]/[catch]/[finally], reference semantics for
   objects and arrays.  The weaving engine of the core library rewrites
   these trees (source-code transformation, the paper's AspectC++ path),
   so the AST must round-trip through the pretty-printer. *)

type pos = { line : int; col : int }

let dummy_pos = { line = 0; col = 0 }
let pp_pos ppf { line; col } = Fmt.pf ppf "%d:%d" line col

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq | Lt | Le | Gt | Ge

type unop = Neg | Not

type expr = { e : expr_desc; epos : pos }

and expr_desc =
  | Int_lit of int
  | Str_lit of string
  | Bool_lit of bool
  | Null_lit
  | This
  | Var of string
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Field of expr * string
  | Index of expr * expr
  | Call of expr * string * expr list (* receiver.method(args) *)
  | Super_call of string * expr list
  | Fn_call of string * expr list (* free function or builtin *)
  | New of string * expr list
  | Array_lit of expr list

type lvalue =
  | Lvar of string
  | Lfield of expr * string
  | Lindex of expr * expr

type stmt = { s : stmt_desc; spos : pos }

and stmt_desc =
  | Var_decl of string * expr
  | Assign of lvalue * expr
  | Expr_stmt of expr
  | If of expr * block * block
  | While of expr * block
  | For of stmt option * expr option * stmt option * block
  | Return of expr option
  | Throw of expr
  | Try of block * catch_clause list * block option
  | Break
  | Continue
  | Block of block

and block = stmt list

and catch_clause = { cc_class : string; cc_var : string; cc_body : block }

type meth_decl = {
  m_name : string;
  m_params : string list;
  m_throws : string list;
  m_body : block;
  m_pos : pos;
}

type class_decl = {
  c_name : string;
  c_super : string option;
  c_fields : string list;
  c_methods : meth_decl list;
  c_pos : pos;
}

type func_decl = {
  f_name : string;
  f_params : string list;
  f_body : block;
  f_pos : pos;
}

type decl = Class_decl of class_decl | Func_decl of func_decl

type program = decl list

(* Convenience constructors used by the source weaver, which synthesizes
   wrapper code programmatically. *)
let mk_expr e = { e; epos = dummy_pos }
let mk_stmt s = { s; spos = dummy_pos }
let var name = mk_expr (Var name)
let this_e = mk_expr This
let call recv m args = mk_expr (Call (recv, m, args))
let fn_call f args = mk_expr (Fn_call (f, args))
let str_lit s = mk_expr (Str_lit s)

(* -------------------------------------------------------------- *)
(* Position-insensitive structural equality (used by tests and by
   the parse/pretty round-trip property).                          *)
(* -------------------------------------------------------------- *)

let rec strip_expr { e; _ } =
  { epos = dummy_pos;
    e =
      (match e with
       | Int_lit _ | Str_lit _ | Bool_lit _ | Null_lit | This | Var _ -> e
       | Unary (op, a) -> Unary (op, strip_expr a)
       | Binary (op, a, b) -> Binary (op, strip_expr a, strip_expr b)
       | And (a, b) -> And (strip_expr a, strip_expr b)
       | Or (a, b) -> Or (strip_expr a, strip_expr b)
       | Field (a, f) -> Field (strip_expr a, f)
       | Index (a, i) -> Index (strip_expr a, strip_expr i)
       | Call (r, m, args) -> Call (strip_expr r, m, List.map strip_expr args)
       | Super_call (m, args) -> Super_call (m, List.map strip_expr args)
       | Fn_call (f, args) -> Fn_call (f, List.map strip_expr args)
       | New (c, args) -> New (c, List.map strip_expr args)
       | Array_lit args -> Array_lit (List.map strip_expr args)) }

let strip_lvalue = function
  | Lvar _ as l -> l
  | Lfield (e, f) -> Lfield (strip_expr e, f)
  | Lindex (e, i) -> Lindex (strip_expr e, strip_expr i)

let rec strip_stmt { s; _ } =
  { spos = dummy_pos;
    s =
      (match s with
       | Var_decl (x, e) -> Var_decl (x, strip_expr e)
       | Assign (l, e) -> Assign (strip_lvalue l, strip_expr e)
       | Expr_stmt e -> Expr_stmt (strip_expr e)
       | If (c, t, f) -> If (strip_expr c, strip_block t, strip_block f)
       | While (c, b) -> While (strip_expr c, strip_block b)
       | For (i, c, u, b) ->
         For
           ( Option.map strip_stmt i,
             Option.map strip_expr c,
             Option.map strip_stmt u,
             strip_block b )
       | Return e -> Return (Option.map strip_expr e)
       | Throw e -> Throw (strip_expr e)
       | Try (b, catches, fin) ->
         Try
           ( strip_block b,
             List.map
               (fun c -> { c with cc_body = strip_block c.cc_body })
               catches,
             Option.map strip_block fin )
       | Break -> Break
       | Continue -> Continue
       | Block b -> Block (strip_block b)) }

and strip_block b = List.map strip_stmt b

let strip_meth m = { m with m_body = strip_block m.m_body; m_pos = dummy_pos }

let strip_decl = function
  | Class_decl c ->
    Class_decl
      { c with c_methods = List.map strip_meth c.c_methods; c_pos = dummy_pos }
  | Func_decl f -> Func_decl { f with f_body = strip_block f.f_body; f_pos = dummy_pos }

let strip_program p = List.map strip_decl p

let equal_program a b = strip_program a = strip_program b
