(** Built-in functions callable from MiniLang with free-function syntax.

    The set mirrors what the paper's workloads need from their standard
    libraries: array allocation and copying, string primitives, hashing,
    printing, assertions, and a deep object-graph equality ([graphEq])
    drivers use to validate state in-language. *)

open Failatom_runtime

val find : string -> (int * (Vm.t -> Value.t list -> Value.t)) option
(** Arity and implementation of a builtin, if it exists. *)

val exists : string -> bool
val names : unit -> string list

val call : Vm.t -> string -> Value.t list -> Value.t
(** Invokes a builtin.
    @raise Invalid_argument on unknown name or arity mismatch (a program
    bug, surfaced by the interpreter as a runtime error, not a MiniLang
    exception). *)

val string_hash : string -> int
(** The polynomial string hash used by the hash-container workloads. *)
