(* MiniLang interpreter semantics: expressions, control flow, objects,
   inheritance, exceptions, builtins. *)

open Failatom_minilang

let run src = Minilang.run_string src

(* Runs a program consisting of a main around [body] and returns its
   printed output. *)
let run_main body = run (Printf.sprintf "function main() { %s return 0; }" body)

let check_out msg expected body = Alcotest.(check string) msg expected (run_main body)

let test_arithmetic () =
  check_out "add" "7\n" "println(3 + 4);";
  check_out "precedence" "14\n" "println(2 + 3 * 4);";
  check_out "neg" "-5\n" "println(-5);";
  check_out "div mod" "3 1\n" "println(10 / 3 + \" \" + 10 % 3);";
  check_out "string concat" "a1true\n" "println(\"a\" + 1 + true);";
  check_out "comparisons" "true false true\n"
    "println((1 < 2) + \" \" + (2 <= 1) + \" \" + (\"a\" < \"b\"));"

let test_logic () =
  check_out "and or" "false true\n" "println((true && false) + \" \" + (false || true));";
  (* short-circuit: the second operand must not run *)
  check_out "short-circuit and" "ok\n"
    "var a = [1]; if (false && a[9] == 0) { println(\"bad\"); } else { println(\"ok\"); }";
  check_out "short-circuit or" "ok\n"
    "var a = [1]; if (true || a[9] == 0) { println(\"ok\"); }"

let test_control_flow () =
  check_out "while" "0123\n" "var i = 0; while (i < 4) { print(i); i = i + 1; } println(\"\");";
  check_out "for" "02468\n" "for (var i = 0; i < 10; i = i + 2) { print(i); } println(\"\");";
  check_out "break" "01\n" "for (var i = 0; i < 9; i = i + 1) { if (i == 2) { break; } print(i); } println(\"\");";
  check_out "continue" "13\n" "for (var i = 0; i < 5; i = i + 1) { if (i % 2 == 0) { continue; } print(i); } println(\"\");";
  check_out "nested if" "mid\n"
    "var x = 5; if (x < 3) { println(\"low\"); } else if (x < 8) { println(\"mid\"); } else { println(\"high\"); }"

let test_functions_and_recursion () =
  Alcotest.(check string) "recursion" "120\n"
    (run "function fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); } function main() { println(fact(5)); return 0; }");
  Alcotest.(check string) "mutual recursion" "true false\n"
    (run
       {|
function isEven(n) { if (n == 0) { return true; } return isOdd(n - 1); }
function isOdd(n) { if (n == 0) { return false; } return isEven(n - 1); }
function main() { println(isEven(10) + " " + isEven(7)); return 0; }
|})

let test_objects () =
  Alcotest.(check string) "fields and methods" "5\n10\n"
    (run
       {|
class Point {
  field x;
  method init(x) { this.x = x; return this; }
  method double() { this.x = this.x * 2; return this.x; }
}
function main() {
  var p = new Point(5);
  println(p.x);
  println(p.double());
  return 0;
}
|})

let test_aliasing () =
  check_out "refs are aliases" "9\n" "var a = [0]; var b = a; b[0] = 9; println(a[0]);";
  check_out "equality is identity" "false true\n"
    "var a = [1]; var b = [1]; var c = a; println((a == b) + \" \" + (a == c));"

let test_inheritance_and_super () =
  Alcotest.(check string) "override + super" "base:3\nbase:6 sub:6\n"
    (run
       {|
class Base {
  field v;
  method init(v) { this.v = v; return this; }
  method show() { return "base:" + this.v; }
}
class Sub extends Base {
  method init(v) { super.init(v * 2); return this; }
  method show() { return super.show() + " sub:" + this.v; }
}
function main() {
  var b = new Base(3);
  var s = new Sub(3);
  println(b.show());
  println(s.show());
  return 0;
}
|})

let test_dynamic_dispatch () =
  Alcotest.(check string) "dispatch through base variable" "sub\n"
    (run
       {|
class Base {
  method kind() { return "base"; }
  method describe() { return this.kind(); }
}
class Sub extends Base {
  method kind() { return "sub"; }
}
function main() { println(new Sub().describe()); return 0; }
|})

let test_exceptions () =
  check_out "catch by class" "caught\n"
    "try { throw new IllegalStateException(\"x\"); } catch (IllegalStateException e) { println(\"caught\"); }";
  check_out "catch by superclass" "rt\n"
    "try { throw new NullPointerException(\"x\"); } catch (RuntimeException e) { println(\"rt\"); }";
  check_out "first matching handler" "specific\n"
    "try { throw new NullPointerException(\"x\"); } catch (NullPointerException e) { println(\"specific\"); } catch (Throwable t) { println(\"general\"); }";
  check_out "message readable" "boom\n"
    "try { throw new Exception(\"boom\"); } catch (Exception e) { println(e.message); }";
  check_out "finally on success" "body,fin,\n"
    "try { print(\"body,\"); } finally { print(\"fin,\"); } println(\"\");";
  check_out "finally on throw" "fin,caught\n"
    "try { try { throw new Exception(\"x\"); } finally { print(\"fin,\"); } } catch (Exception e) { println(\"caught\"); }";
  check_out "rethrow" "inner,outer\n"
    "try { try { throw new Exception(\"x\"); } catch (Exception e) { print(\"inner,\"); throw e; } } catch (Exception e) { println(\"outer\"); }"

let test_runtime_exceptions () =
  check_out "div by zero" "ArithmeticException\n"
    "try { var x = 1 / 0; } catch (ArithmeticException e) { println(\"ArithmeticException\"); }";
  check_out "null field" "npe\n"
    "var n = null; try { var x = n.f; } catch (NullPointerException e) { println(\"npe\"); }";
  check_out "null call" "npe\n"
    "var n = null; try { n.m(); } catch (NullPointerException e) { println(\"npe\"); }";
  check_out "array bounds" "oob\n"
    "var a = [1, 2]; try { a[5] = 0; } catch (IndexOutOfBoundsException e) { println(\"oob\"); }";
  check_out "negative array" "neg\n"
    "try { newArray(-3); } catch (NegativeArraySizeException e) { println(\"neg\"); }"

let test_finally_overrides_return () =
  Alcotest.(check string) "finally return wins" "2\n"
    (run
       {|
function f() {
  try { return 1; } finally { return 2; }
}
function main() { println(f()); return 0; }
|})

let test_builtins () =
  check_out "len" "3 2\n" "println(len(\"abc\") + \" \" + len([1, 2]));";
  check_out "charAt/ord/chr" "b 98 c\n"
    "println(charAt(\"abc\", 1) + \" \" + ord(\"b\") + \" \" + chr(99));";
  check_out "substr" "ell\n" "println(substr(\"hello\", 1, 3));";
  check_out "parseInt" "42\n" "println(parseInt(\"42\"));";
  check_out "min max abs" "1 5 3\n" "println(min(1, 5) + \" \" + max(1, 5) + \" \" + abs(-3));";
  check_out "str" "12\n" "println(str(1) + str(2));";
  check_out "arraycopy" "0 1 2\n"
    "var src = [1, 2, 9]; var dst = [0, 0, 0]; arraycopy(src, 0, dst, 1, 2); println(dst[0] + \" \" + dst[1] + \" \" + dst[2]);";
  check_out "instanceOf/classOf" "true false NullPointerException\n"
    "var e = new NullPointerException(\"m\"); println(instanceOf(e, \"RuntimeException\") + \" \" + instanceOf(e, \"Error\") + \" \" + classOf(e));";
  check_out "graphEq deep" "true false\n"
    "var a = [[1]]; var b = deepCopy(a); var r = graphEq(a, b) + \" \"; b[0][0] = 2; println(r + graphEq(a, b));"

let expect_runtime_error body =
  match run_main body with
  | output -> Alcotest.failf "expected runtime error, got output %S" output
  | exception Compile.Runtime_error _ -> ()
  | exception Failatom_runtime.Vm.Unknown_method _ -> ()

let test_runtime_errors () =
  expect_runtime_error "var x = unknownVar;";
  expect_runtime_error "println(true + 1);";
  expect_runtime_error "var a = [1]; var i = a[\"x\"];";
  expect_runtime_error "throw 42;";
  (* Calling an unknown method is a dynamic error: receivers are not
     statically typed. *)
  expect_runtime_error "var a = new Exception(\"m\"); a.nope();"

let test_check_builtin () =
  check_out "check passes" "done\n" "check(1 < 2, \"fine\"); println(\"done\");";
  Alcotest.(check string) "check throws IllegalStateException" "caught\n"
    (run_main
       "try { check(false, \"nope\"); } catch (IllegalStateException e) { println(\"caught\"); }")

let suite =
  [ Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "logic" `Quick test_logic;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "functions" `Quick test_functions_and_recursion;
    Alcotest.test_case "objects" `Quick test_objects;
    Alcotest.test_case "aliasing" `Quick test_aliasing;
    Alcotest.test_case "inheritance and super" `Quick test_inheritance_and_super;
    Alcotest.test_case "dynamic dispatch" `Quick test_dynamic_dispatch;
    Alcotest.test_case "exceptions" `Quick test_exceptions;
    Alcotest.test_case "runtime exceptions" `Quick test_runtime_exceptions;
    Alcotest.test_case "finally overrides return" `Quick test_finally_overrides_return;
    Alcotest.test_case "builtins" `Quick test_builtins;
    Alcotest.test_case "runtime errors" `Quick test_runtime_errors;
    Alcotest.test_case "check builtin" `Quick test_check_builtin ]
