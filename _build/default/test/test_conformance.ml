(* MiniLang conformance corpus: a matrix of small programs with their
   expected output, pinning down the semantics the instrumentation
   relies on (evaluation order, dispatch, exception propagation,
   aliasing).  Each entry is independent and runs in milliseconds. *)

let corpus : (string * string * string) list =
  [ ( "arith-precedence",
      "println(2 + 3 * 4 - 10 / 2);",
      "9\n" );
    ( "modulo-negative",
      "println(-7 % 3);",
      (* OCaml mod semantics: sign of the dividend *)
      "-1\n" );
    ( "string-coercion-order",
      "println(1 + 2 + \"x\" + 1 + 2);",
      "3x12\n" );
    ( "comparison-chaining-via-bools",
      "println((1 < 2) == (3 < 4));",
      "true\n" );
    ( "short-circuit-preserves-state",
      "var a = [0]; var hit = false; if (true || a[9] == 1) { hit = true; } println(hit);",
      "true\n" );
    ( "unary-stacking",
      "println(- -5); println(!!true);",
      "5\ntrue\n" );
    ( "var-shadow-by-redeclare",
      "var x = 1; var x = 2; println(x);",
      "2\n" );
    ( "while-false-never-runs",
      "while (false) { println(\"no\"); } println(\"yes\");",
      "yes\n" );
    ( "for-without-init-or-update",
      "var i = 0; for (; i < 3;) { print(i); i = i + 1; } println(\"\");",
      "012\n" );
    ( "nested-break-inner-only",
      "for (var i = 0; i < 2; i = i + 1) { for (var j = 0; j < 5; j = j + 1) { if (j == 1) { break; } print(i + \"\" + j); } } println(\"\");",
      "0010\n" );
    ( "continue-in-while",
      "var i = 0; var s = \"\"; while (i < 5) { i = i + 1; if (i % 2 == 0) { continue; } s = s + i; } println(s);",
      "135\n" );
    ( "array-aliasing",
      "var a = [1, 2]; var b = a; a[0] = 9; println(b[0] + \" \" + (a == b));",
      "9 true\n" );
    ( "array-literal-evaluation-order",
      "var log = \"\"; var mk = [1, 2, 3]; log = log + len(mk); println(log);",
      "3\n" );
    ( "null-comparisons",
      "var n = null; println((n == null) + \" \" + (n != null));",
      "true false\n" );
    ( "string-compare-lexicographic",
      "println((\"abc\" < \"abd\") + \" \" + (\"b\" > \"ab\"));",
      "true true\n" );
    ( "truthiness-in-conditions",
      "var out = \"\"; if (3) { out = out + \"i\"; } if (\"\") { out = out + \"s\"; } if (null) { out = out + \"n\"; } println(out);",
      (* nonzero ints are true; strings are true even when empty; null is false *)
      "is\n" );
    ( "catch-binds-exception-object",
      "try { throw new IllegalStateException(\"m1\"); } catch (Throwable t) { println(classOf(t) + \":\" + t.message); }",
      "IllegalStateException:m1\n" );
    ( "finally-runs-on-break",
      "for (var i = 0; i < 3; i = i + 1) { try { if (i == 1) { break; } print(i); } finally { print(\"f\"); } } println(\"\");",
      "0ff\n" );
    ( "nested-finally-order",
      "try { try { print(\"a\"); } finally { print(\"b\"); } print(\"c\"); } finally { print(\"d\"); } println(\"\");",
      "abcd\n" );
    ( "rethrow-preserves-identity",
      "var first = null; try { try { throw new Exception(\"e\"); } catch (Exception e) { first = e; throw e; } } catch (Exception e2) { println(first == e2); }",
      "true\n" );
    ( "uncaught-in-catch-propagates",
      "try { try { throw new Exception(\"a\"); } catch (Exception e) { throw new IllegalStateException(\"b\"); } } catch (IllegalStateException e) { println(e.message); }",
      "b\n" );
    ( "exception-from-deep-recursion",
      "println(\"start\"); try { var a = [1]; var x = a[5]; } catch (IndexOutOfBoundsException e) { println(\"caught\"); }",
      "start\ncaught\n" ) ]

let class_corpus : (string * string * string) list =
  [ ( "three-level-dispatch",
      {|
class A { method who() { return "A"; } method id() { return this.who(); } }
class B extends A { method who() { return "B"; } }
class C extends B { method who() { return "C"; } }
function main() { println(new A().id() + new B().id() + new C().id()); return 0; }
|},
      "ABC\n" );
    ( "super-chain",
      {|
class A { method tag() { return "a"; } }
class B extends A { method tag() { return super.tag() + "b"; } }
class C extends B { method tag() { return super.tag() + "c"; } }
function main() { println(new C().tag()); return 0; }
|},
      "abc\n" );
    ( "inherited-init",
      {|
class A { field x; method init(v) { this.x = v; return this; } }
class B extends A { }
function main() { println(new B(7).x); return 0; }
|},
      "7\n" );
    ( "fields-are-per-instance",
      {|
class Box { field v; method init(v) { this.v = v; return this; } }
function main() {
  var a = new Box(1);
  var b = new Box(2);
  a.v = 9;
  println(a.v + " " + b.v);
  return 0;
}
|},
      "9 2\n" );
    ( "object-identity-vs-structure",
      {|
class P { field x; method init(x) { this.x = x; return this; } }
function main() {
  var a = new P(1);
  var b = new P(1);
  println((a == b) + " " + graphEq(a, b));
  return 0;
}
|},
      "false true\n" );
    ( "methods-see-current-field-values",
      {|
class Acc { field n;
  method init() { this.n = 0; return this; }
  method add(k) { this.n = this.n + k; return this.n; }
}
function main() {
  var a = new Acc();
  println(a.add(1) + "" + a.add(2) + "" + a.add(3));
  return 0;
}
|},
      "136\n" );
    ( "exception-subclass-matching-order",
      {|
class AppError extends Exception { }
class DbError extends AppError { }
function main() {
  try { throw new DbError("down"); }
  catch (DbError e) { println("db:" + e.message); }
  catch (AppError e) { println("app"); }
  return 0;
}
|},
      "db:down\n" );
    ( "user-exception-through-superclass-handler",
      {|
class AppError extends Exception { }
class DbError extends AppError { }
function main() {
  try { throw new DbError("x"); }
  catch (Exception e) { println(classOf(e)); }
  return 0;
}
|},
      "DbError\n" );
    ( "cyclic-structures-print-and-compare",
      {|
class N { field next; method init() { this.next = null; return this; } }
function main() {
  var a = new N();
  a.next = a;
  var b = deepCopy(a);
  println((a == b) + " " + graphEq(a, b) + " " + (b.next == b));
  return 0;
}
|},
      "false true true\n" );
    ( "argument-evaluation-left-to-right",
      {|
class T { field log;
  method init() { this.log = ""; return this; }
  method note(tag) { this.log = this.log + tag; return tag; }
  method pair(x, y) { return x + y; }
}
function main() {
  var t = new T();
  t.pair(t.note("L"), t.note("R"));
  println(t.log);
  return 0;
}
|},
      "LR\n" ) ]

let run_expect name body expected () =
  let source = Printf.sprintf "function main() { %s return 0; }" body in
  Alcotest.(check string) name expected (Failatom_minilang.Minilang.run_string source)

let run_program_expect name source expected () =
  Alcotest.(check string) name expected (Failatom_minilang.Minilang.run_string source)

let suite =
  List.map
    (fun (name, body, expected) ->
      Alcotest.test_case name `Quick (run_expect name body expected))
    corpus
  @ List.map
      (fun (name, source, expected) ->
        Alcotest.test_case name `Quick (run_program_expect name source expected))
      class_corpus
