(* The pipeline's core guarantees, property-tested over randomly
   generated programs.

   A generator produces small class-based programs whose methods are
   arbitrary sequences of the primitives that matter to failure
   atomicity — field mutations, calls to earlier methods, allocations,
   and guard calls — together with a driver that exercises every
   method.  Over these programs we check the reproduction's two central
   properties:

   1. closure: after masking, re-detection finds no failure non-atomic
      method with an original name (the paper's §4.2 claim), and
   2. flavor equivalence: the source-weaving and load-time-filter
      implementations assign identical verdicts (paper §5).

   Baseline determinism: generated validations can never fire on the
   real path, so every generated program runs clean uninstrumented. *)

open Failatom_core

type action =
  | Mutate of int (* this.f<i> = this.f<i> + 1 *)
  | Call of int (* this.m<j>() for j < current index *)
  | Alloc (* var t<n> = new Obj(...) *)
  | Guard (* this.guard() — validating leaf, never fires in baseline *)

let gen_method_body ~index =
  let open QCheck2.Gen in
  let action =
    oneof
      ([ map (fun i -> Mutate i) (int_range 0 2); return Alloc; return Guard ]
      @ (if index > 0 then [ map (fun j -> Call j) (int_range 0 (index - 1)) ] else []))
  in
  list_size (1 -- 5) action

let gen_program_spec =
  QCheck2.Gen.(
    int_range 1 5 >>= fun n ->
    let rec build i acc =
      if i = n then return (List.rev acc)
      else gen_method_body ~index:i >>= fun body -> build (i + 1) (body :: acc)
    in
    build 0 [])

let render_spec (spec : action list list) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    {|
class Obj {
  field tag;
  method init(tag) { this.tag = tag; return this; }
}
class W {
  field f0;
  field f1;
  field f2;
  method init() { this.f0 = 0; this.f1 = 0; this.f2 = 0; return this; }
  method guard() throws IllegalStateException {
    if (this.f0 < 0 - 1000000) { throw new IllegalStateException("impossible"); }
    return null;
  }
|};
  List.iteri
    (fun i body ->
      Buffer.add_string buf (Printf.sprintf "  method m%d() {\n" i);
      List.iteri
        (fun k action ->
          Buffer.add_string buf
            (match action with
             | Mutate f -> Printf.sprintf "    this.f%d = this.f%d + 1;\n" f f
             | Call j -> Printf.sprintf "    this.m%d();\n" j
             | Alloc -> Printf.sprintf "    var t%d = new Obj(%d);\n" k k
             | Guard -> "    this.guard();\n"))
        body;
      Buffer.add_string buf "    return null;\n  }\n")
    spec;
  Buffer.add_string buf "}\nfunction main() {\n  var w = new W();\n";
  List.iteri (fun i _ -> Buffer.add_string buf (Printf.sprintf "  w.m%d();\n" i)) spec;
  Buffer.add_string buf "  println(w.f0 + \"/\" + w.f1 + \"/\" + w.f2);\n  return 0;\n}\n";
  Buffer.contents buf

let print_spec spec = render_spec spec

let verdict_map classification =
  List.map
    (fun (r : Classify.method_report) ->
      (Method_id.to_string r.Classify.id, Classify.verdict_name r.Classify.verdict))
    (Classify.reports classification)

let prop_masking_closes =
  QCheck2.Test.make ~name:"masking closes on random programs" ~count:25
    ~print:print_spec gen_program_spec
    (fun spec ->
      let program = Failatom_minilang.Minilang.parse (render_spec spec) in
      let config = Config.default in
      let outcome = Mask.correct ~config program in
      let d2 =
        Detect.run ~config ~prepare:(Mask.register_hooks config) outcome.Mask.corrected
      in
      let residual =
        List.filter
          (fun (id : Method_id.t) -> Source_weaver.demangle id.Method_id.name = None)
          (Classify.non_atomic_methods (Classify.classify d2))
      in
      if residual = [] then true
      else
        QCheck2.Test.fail_reportf "residual non-atomic: %s"
          (String.concat ", " (List.map Method_id.to_string residual)))

let prop_flavor_equivalence =
  QCheck2.Test.make ~name:"flavors agree on random programs" ~count:25
    ~print:print_spec gen_program_spec
    (fun spec ->
      let program = Failatom_minilang.Minilang.parse (render_spec spec) in
      let via flavor = verdict_map (Classify.classify (Detect.run ~flavor program)) in
      let s = via Detect.Source_weaving and b = via Detect.Load_time_filters in
      if s = b then true
      else
        QCheck2.Test.fail_reportf "source=%s@.binary=%s"
          (String.concat ";" (List.map (fun (m, v) -> m ^ "=" ^ v) s))
          (String.concat ";" (List.map (fun (m, v) -> m ^ "=" ^ v) b)))

(* Every run of the instrumented program (probe run) reproduces the
   baseline output: instrumentation transparency on random shapes. *)
let prop_transparent =
  QCheck2.Test.make ~name:"instrumentation transparent on random programs" ~count:25
    ~print:print_spec gen_program_spec
    (fun spec ->
      let program = Failatom_minilang.Minilang.parse (render_spec spec) in
      (Detect.run program).Detect.transparent)

let suite =
  [ QCheck_alcotest.to_alcotest prop_masking_closes;
    QCheck_alcotest.to_alcotest prop_flavor_equivalence;
    QCheck_alcotest.to_alcotest prop_transparent ]
