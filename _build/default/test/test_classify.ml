(* Classifier tests: call weighting, class-level rollup, and the
   exception-free re-classification of paper §4.3. *)

open Failatom_core

let parse = Failatom_minilang.Minilang.parse

(* A program where class Clean is fully atomic and class Dirty has one
   pure non-atomic method whose only exposure comes from exceptions in
   Helper.maybeFail. *)
let src =
  {|
class Helper {
  method maybeFail(n) throws IllegalArgumentException {
    if (n < 0) { throw new IllegalArgumentException("neg"); }
    return n;
  }
}
class Clean {
  field total;
  method init() { this.total = 0; return this; }
  method absorb(h, n) throws IllegalArgumentException {
    var v = h.maybeFail(n);
    this.total = this.total + v;
    return this.total;
  }
}
class Dirty {
  field total;
  method init() { this.total = 0; return this; }
  method absorb(h, n) throws IllegalArgumentException {
    this.total = this.total + n;
    h.maybeFail(n);
    return this.total;
  }
}
function main() {
  var h = new Helper();
  var clean = new Clean();
  var dirty = new Dirty();
  for (var i = 0; i < 5; i = i + 1) { clean.absorb(h, i); }
  dirty.absorb(h, 10);
  println(clean.total + " " + dirty.total);
  return 0;
}
|}

let classified ?exception_free () =
  let detection = Detect.run (parse src) in
  (detection, Classify.classify ?exception_free detection)

let test_verdicts () =
  let _, c = classified () in
  let v id = Classify.verdict c id in
  Alcotest.(check bool) "clean absorb atomic" true
    (v (Method_id.make "Clean" "absorb") = Some Classify.Atomic);
  Alcotest.(check bool) "dirty absorb pure" true
    (v (Method_id.make "Dirty" "absorb") = Some Classify.Pure_non_atomic);
  Alcotest.(check bool) "helper atomic" true
    (v (Method_id.make "Helper" "maybeFail") = Some Classify.Atomic)

let test_call_weighting () =
  let _, c = classified () in
  let counts = Classify.call_counts c in
  (* clean.absorb 5x, dirty.absorb once, maybeFail 6x, two inits (Helper has none) *)
  Alcotest.(check int) "pure call weight" 1 counts.Classify.pure;
  Alcotest.(check int) "atomic call weight" (5 + 6 + 2) counts.Classify.atomic;
  let methods = Classify.method_counts c in
  Alcotest.(check int) "methods total" 5 (Classify.total methods)

let test_class_rollup () =
  let _, c = classified () in
  let expected =
    [ ("Clean", Classify.Atomic);
      ("Dirty", Classify.Pure_non_atomic);
      ("Helper", Classify.Atomic) ]
  in
  Alcotest.(check (list (pair string string))) "class verdicts"
    (List.map (fun (n, v) -> (n, Classify.verdict_name v)) expected)
    (List.map (fun (n, v) -> (n, Classify.verdict_name v)) c.Classify.class_verdicts)

(* Declaring Helper.maybeFail exception-free discards the injections
   whose site it was; Dirty.absorb stays non-atomic only through the
   real path... but here there is none (all arguments are positive), so
   it must be re-classified as atomic. *)
let test_exception_free_reclassification () =
  let _, c0 = classified () in
  Alcotest.(check bool) "initially pure" true
    (Classify.verdict c0 (Method_id.make "Dirty" "absorb")
     = Some Classify.Pure_non_atomic);
  let detection, c =
    let d = Detect.run (parse src) in
    (d, Classify.classify ~exception_free:[ Method_id.make "Helper" "maybeFail" ] d)
  in
  ignore detection;
  Alcotest.(check bool) "runs were discarded" true (c.Classify.discarded_runs > 0);
  Alcotest.(check bool) "re-classified atomic" true
    (Classify.verdict c (Method_id.make "Dirty" "absorb") = Some Classify.Atomic)

let test_pure_and_non_atomic_lists () =
  let _, c = classified () in
  Alcotest.(check (list string)) "pure methods" [ "Dirty.absorb" ]
    (List.map Method_id.to_string (Classify.pure_methods c));
  Alcotest.(check (list string)) "all non-atomic" [ "Dirty.absorb" ]
    (List.map Method_id.to_string (Classify.non_atomic_methods c));
  Alcotest.(check (list string)) "conditional empty" []
    (List.map Method_id.to_string (Classify.conditional_methods c))

let suite =
  [ Alcotest.test_case "verdicts" `Quick test_verdicts;
    Alcotest.test_case "call weighting" `Quick test_call_weighting;
    Alcotest.test_case "class rollup" `Quick test_class_rollup;
    Alcotest.test_case "exception-free reclassification" `Quick
      test_exception_free_reclassification;
    Alcotest.test_case "verdict lists" `Quick test_pure_and_non_atomic_lists ]
