(* Detection-phase tests: ground truth on the synthetic benchmark in
   BOTH implementation flavors, flavor equivalence, run accounting,
   transparency, and the analyzer's injectable-exception sets. *)

open Failatom_core
open Failatom_apps

let verdict_t =
  Alcotest.testable
    (Fmt.of_to_string Classify.verdict_name)
    (fun (a : Classify.verdict) b -> a = b)

let detect flavor =
  let program = Failatom_minilang.Minilang.parse Synthetic.source in
  Detect.run ~flavor program

let classification flavor = Classify.classify (detect flavor)

let check_ground_truth flavor () =
  let c = classification flavor in
  List.iter
    (fun (id, expected) ->
      match Classify.verdict c id with
      | Some got ->
        Alcotest.check verdict_t (Method_id.to_string id) expected got
      | None -> Alcotest.failf "method %s not classified" (Method_id.to_string id))
    Synthetic.expectations;
  (* no unexpected methods *)
  Alcotest.(check int) "all used methods covered"
    (List.length Synthetic.expectations)
    (List.length (Classify.reports c))

let test_flavor_equivalence () =
  (* The paper's two implementations must agree method by method. *)
  let cs = classification Detect.Source_weaving in
  let cb = classification Detect.Load_time_filters in
  List.iter
    (fun (r : Classify.method_report) ->
      match Classify.verdict cb r.Classify.id with
      | Some got ->
        Alcotest.check verdict_t
          ("flavors agree on " ^ Method_id.to_string r.Classify.id)
          r.Classify.verdict got
      | None ->
        Alcotest.failf "binary flavor misses %s" (Method_id.to_string r.Classify.id))
    (Classify.reports cs)

let test_injection_accounting () =
  let ds = detect Detect.Source_weaving in
  let db = detect Detect.Load_time_filters in
  Alcotest.(check bool) "some injections happened" true (ds.Detect.injections > 0);
  Alcotest.(check int) "flavors inject the same count" ds.Detect.injections
    db.Detect.injections;
  (* each recorded run armed a distinct injection point *)
  let points =
    List.map (fun (r : Marks.run_record) -> r.Marks.injection_point) ds.Detect.runs
  in
  Alcotest.(check int) "distinct injection points"
    (List.length points)
    (List.length (List.sort_uniq compare points));
  (* exactly one probe run (the final no-injection one) is recorded *)
  let probes =
    List.filter (fun (r : Marks.run_record) -> r.Marks.injected = None) ds.Detect.runs
  in
  Alcotest.(check int) "one probe run" 1 (List.length probes);
  Alcotest.(check int) "injections exclude the probe"
    (List.length ds.Detect.runs - 1)
    ds.Detect.injections

let test_transparency () =
  let d = detect Detect.Source_weaving in
  Alcotest.(check bool) "probe run matches baseline output" true d.Detect.transparent

let test_analyzer_injectable_sets () =
  let program = Failatom_minilang.Minilang.parse Synthetic.source in
  let analyzer = Analyzer.analyze Config.default program in
  (* declared throws first, then the generic runtime exceptions *)
  Alcotest.(check (list string)) "declared + generic"
    [ "IllegalArgumentException"; "NullPointerException"; "OutOfMemoryError" ]
    (Analyzer.injectable_for analyzer (Method_id.make "Unit" "validateThenMutate"));
  Alcotest.(check (list string)) "generic only"
    [ "NullPointerException"; "OutOfMemoryError" ]
    (Analyzer.injectable_for analyzer (Method_id.make "Unit" "reader"));
  (* a declared generic exception is not duplicated *)
  Alcotest.(check (list string)) "no duplicates"
    [ "OutOfMemoryError"; "NullPointerException" ]
    (Analyzer.injectable_for analyzer (Method_id.make "Unit" "mutateThenCall"))

let test_runtime_exception_config () =
  let config = { Config.default with Config.runtime_exceptions = [] } in
  let program = Failatom_minilang.Minilang.parse Synthetic.source in
  let d = Detect.run ~config program in
  let d_full = detect Detect.Source_weaving in
  Alcotest.(check bool) "fewer injection points without generics" true
    (d.Detect.injections < d_full.Detect.injections)

let test_marks_have_diff_paths () =
  let d = detect Detect.Source_weaving in
  let has_diff =
    List.exists
      (fun (r : Marks.run_record) ->
        List.exists
          (fun (m : Marks.mark) -> (not m.Marks.atomic) && m.Marks.diff_path <> None)
          r.Marks.marks)
      d.Detect.runs
  in
  Alcotest.(check bool) "non-atomic marks carry diff paths" true has_diff

let test_detection_error_on_broken_workload () =
  let program =
    Failatom_minilang.Minilang.parse
      {|
class A { method m() { return unknown_variable; } }
function main() { return new A().m(); }
|}
  in
  match Detect.run program with
  | _ -> Alcotest.fail "expected Detection_error"
  | exception Detect.Detection_error _ -> ()
  | exception Failatom_minilang.Compile.Runtime_error _ -> ()

let suite =
  [ Alcotest.test_case "ground truth (source weaving)" `Quick
      (check_ground_truth Detect.Source_weaving);
    Alcotest.test_case "ground truth (load-time filters)" `Quick
      (check_ground_truth Detect.Load_time_filters);
    Alcotest.test_case "flavor equivalence" `Quick test_flavor_equivalence;
    Alcotest.test_case "injection accounting" `Quick test_injection_accounting;
    Alcotest.test_case "transparency" `Quick test_transparency;
    Alcotest.test_case "injectable sets" `Quick test_analyzer_injectable_sets;
    Alcotest.test_case "runtime exception config" `Quick test_runtime_exception_config;
    Alcotest.test_case "diff paths recorded" `Quick test_marks_have_diff_paths;
    Alcotest.test_case "broken workload rejected" `Quick test_detection_error_on_broken_workload ]
