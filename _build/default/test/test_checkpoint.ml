(* Tests for checkpoint/rollback, in both strategies (paper Listing 2
   plus the §6.2 copy-on-write optimization), and for the mark-sweep
   collector that reclaims objects discarded by a rollback. *)

open Failatom_runtime

let check = Alcotest.check

let canon heap v = Object_graph.canonical heap v
let graph_equal heap a b = Object_graph.equal (canon heap a) (canon heap b)

let fixture () =
  let heap = Heap.create () in
  let child = Heap.alloc_object heap ~cls:"L" [ ("v", Value.Int 1) ] in
  let root =
    Heap.alloc_object heap ~cls:"R" [ ("c", Value.Ref child); ("n", Value.Int 0) ]
  in
  (heap, root, child)

let rollback_restores strategy () =
  let heap, root, child = fixture () in
  let before = canon heap (Value.Ref root) in
  let cp = Checkpoint.take ~strategy heap [ Value.Ref root ] in
  Heap.set_field heap root "n" (Value.Int 42);
  Heap.set_field heap child "v" (Value.Str "corrupted");
  check Alcotest.bool "mutated" false
    (Object_graph.equal before (canon heap (Value.Ref root)));
  Checkpoint.rollback cp;
  Checkpoint.dispose cp;
  check Alcotest.bool "rolled back" true
    (Object_graph.equal before (canon heap (Value.Ref root)))

let rollback_alias_visible strategy () =
  (* Rollback happens in place: an alias held by someone else observes
     the restored state (unlike a copy-and-swap implementation). *)
  let heap, root, child = fixture () in
  let cp = Checkpoint.take ~strategy heap [ Value.Ref root ] in
  Heap.set_field heap child "v" (Value.Int 9);
  Checkpoint.rollback cp;
  Checkpoint.dispose cp;
  check Alcotest.bool "alias sees rollback" true
    (Heap.get_field heap child "v" = Some (Value.Int 1))

let structural_rollback strategy () =
  (* Rolling back must undo link changes, not just scalar fields. *)
  let heap, root, child = fixture () in
  let before = canon heap (Value.Ref root) in
  let cp = Checkpoint.take ~strategy heap [ Value.Ref root ] in
  let intruder = Heap.alloc_object heap ~cls:"L" [ ("v", Value.Int 5) ] in
  Heap.set_field heap root "c" (Value.Ref intruder);
  Heap.set_field heap child "v" (Value.Int 77);
  Checkpoint.rollback cp;
  Checkpoint.dispose cp;
  check Alcotest.bool "links restored" true
    (Object_graph.equal before (canon heap (Value.Ref root)))

let nested_checkpoints strategy () =
  let heap, root, _child = fixture () in
  let g0 = canon heap (Value.Ref root) in
  let outer = Checkpoint.take ~strategy heap [ Value.Ref root ] in
  Heap.set_field heap root "n" (Value.Int 1);
  let g1 = canon heap (Value.Ref root) in
  let inner = Checkpoint.take ~strategy heap [ Value.Ref root ] in
  Heap.set_field heap root "n" (Value.Int 2);
  Checkpoint.rollback inner;
  Checkpoint.dispose inner;
  check Alcotest.bool "inner rollback to mid state" true
    (Object_graph.equal g1 (canon heap (Value.Ref root)));
  Checkpoint.rollback outer;
  Checkpoint.dispose outer;
  check Alcotest.bool "outer rollback to start" true
    (Object_graph.equal g0 (canon heap (Value.Ref root)))

let test_lazy_copies_on_demand () =
  let heap, root, child = fixture () in
  let cp = Checkpoint.take ~strategy:Checkpoint.Lazy heap [ Value.Ref root ] in
  check Alcotest.int "nothing copied upfront" 0 (Checkpoint.size cp);
  Heap.set_field heap root "n" (Value.Int 5);
  check Alcotest.int "one payload after first write" 1 (Checkpoint.size cp);
  Heap.set_field heap root "n" (Value.Int 6);
  check Alcotest.int "second write to same object free" 1 (Checkpoint.size cp);
  Heap.set_field heap child "v" (Value.Int 7);
  check Alcotest.int "two payloads" 2 (Checkpoint.size cp);
  Checkpoint.rollback cp;
  Checkpoint.dispose cp;
  check Alcotest.bool "lazy rollback correct" true
    (Heap.get_field heap root "n" = Some (Value.Int 0)
     && Heap.get_field heap child "v" = Some (Value.Int 1))

let test_eager_copies_upfront () =
  let heap, root, _ = fixture () in
  let cp = Checkpoint.take ~strategy:Checkpoint.Eager heap [ Value.Ref root ] in
  check Alcotest.int "whole graph copied" 2 (Checkpoint.size cp);
  Checkpoint.dispose cp

let test_dispose_detaches_barrier () =
  let heap, root, _ = fixture () in
  let cp = Checkpoint.take ~strategy:Checkpoint.Lazy heap [ Value.Ref root ] in
  Checkpoint.dispose cp;
  check Alcotest.bool "barrier removed" true (heap.Heap.on_write = None);
  Heap.set_field heap root "n" (Value.Int 8);
  check Alcotest.int "no recording after dispose" 0 (Checkpoint.size cp)

let test_with_checkpoint_disposes () =
  let heap, root, _ = fixture () in
  Checkpoint.with_checkpoint ~strategy:Checkpoint.Lazy heap [ Value.Ref root ]
    (fun _cp -> Heap.set_field heap root "n" (Value.Int 3));
  check Alcotest.bool "barrier gone after scope" true (heap.Heap.on_write = None)

(* ---------------- GC ---------------- *)

let test_gc_collects_unreachable () =
  let vm = Vm.create () in
  let heap = vm.Vm.heap in
  let keep = Heap.alloc_object heap ~cls:"K" [] in
  let _garbage = Heap.alloc_object heap ~cls:"G" [] in
  Vm.set_global vm "root" (Value.Ref keep);
  let freed = Gc_heap.collect vm in
  check Alcotest.int "one object collected" 1 freed;
  check Alcotest.bool "root survives" true (Heap.mem heap keep)

let test_gc_respects_extra_roots () =
  let vm = Vm.create () in
  let heap = vm.Vm.heap in
  let pinned = Heap.alloc_object heap ~cls:"P" [] in
  let freed = Gc_heap.collect ~extra_roots:[ Value.Ref pinned ] vm in
  check Alcotest.int "nothing collected" 0 freed;
  check Alcotest.bool "pinned survives" true (Heap.mem heap pinned)

let test_gc_cyclic_garbage () =
  let vm = Vm.create () in
  let heap = vm.Vm.heap in
  let a = Heap.alloc_object heap ~cls:"C" [ ("n", Value.Null) ] in
  let b = Heap.alloc_object heap ~cls:"C" [ ("n", Value.Ref a) ] in
  Heap.set_field heap a "n" (Value.Ref b);
  (* The cycle is unreachable: reference counting would leak it, the
     tracing collector must not (paper §5.1, fourth limitation). *)
  let freed = Gc_heap.collect vm in
  check Alcotest.int "cycle collected" 2 freed

let test_rollback_then_gc () =
  let vm = Vm.create () in
  let heap = vm.Vm.heap in
  let root = Heap.alloc_object heap ~cls:"R" [ ("c", Value.Null) ] in
  Vm.set_global vm "root" (Value.Ref root);
  let cp = Checkpoint.take heap [ Value.Ref root ] in
  let junk = Heap.alloc_object heap ~cls:"J" [] in
  Heap.set_field heap root "c" (Value.Ref junk);
  Checkpoint.rollback cp;
  Checkpoint.dispose cp;
  let freed = Gc_heap.collect vm in
  check Alcotest.int "discarded object reclaimed" 1 freed;
  check Alcotest.bool "junk gone" false (Heap.mem heap junk)

(* ---------------- properties ---------------- *)

(* Random heaps and random mutation storms: after rollback the root's
   canonical form must be exactly the checkpointed one, whatever was
   mutated, linked, or allocated in between — for both strategies. *)
let build_random_graph heap rs n =
  let ids =
    Array.init n (fun i ->
        Heap.alloc_object heap ~cls:(if i mod 2 = 0 then "A" else "B")
          [ ("v", Value.Int (Random.State.int rs 5)); ("p", Value.Null) ])
  in
  Array.iter
    (fun id ->
      if Random.State.bool rs then
        Heap.set_field heap id "p" (Value.Ref ids.(Random.State.int rs n)))
    ids;
  ids

let mutate_randomly heap rs ids steps =
  for _ = 1 to steps do
    let id = ids.(Random.State.int rs (Array.length ids)) in
    match Random.State.int rs 4 with
    | 0 -> Heap.set_field heap id "v" (Value.Int (Random.State.int rs 100))
    | 1 -> Heap.set_field heap id "p" Value.Null
    | 2 ->
      Heap.set_field heap id "p"
        (Value.Ref ids.(Random.State.int rs (Array.length ids)))
    | _ ->
      (* link in a freshly allocated object *)
      let fresh = Heap.alloc_object heap ~cls:"F" [ ("v", Value.Int 0); ("p", Value.Null) ] in
      Heap.set_field heap id "p" (Value.Ref fresh)
  done

let rollback_prop strategy =
  QCheck2.Test.make
    ~name:
      (Printf.sprintf "rollback restores random graphs (%s)"
         (match strategy with Checkpoint.Eager -> "eager" | Checkpoint.Lazy -> "lazy"))
    ~count:100
    QCheck2.Gen.(triple (int_range 1 10) (int_range 1 25) int)
    (fun (n, steps, seed) ->
      let heap = Heap.create () in
      let rs = Random.State.make [| seed |] in
      let ids = build_random_graph heap rs n in
      let root = Value.Ref ids.(0) in
      let before = canon heap root in
      Checkpoint.with_checkpoint ~strategy heap [ root ] (fun cp ->
          mutate_randomly heap rs ids steps;
          Checkpoint.rollback cp);
      Object_graph.equal before (canon heap root))

let nested_rollback_prop =
  QCheck2.Test.make ~name:"nested lazy checkpoints restore in LIFO order" ~count:60
    QCheck2.Gen.(triple (int_range 2 8) (int_range 1 10) int)
    (fun (n, steps, seed) ->
      let heap = Heap.create () in
      let rs = Random.State.make [| seed |] in
      let ids = build_random_graph heap rs n in
      let root = Value.Ref ids.(0) in
      let g0 = canon heap root in
      let outer = Checkpoint.take ~strategy:Checkpoint.Lazy heap [ root ] in
      mutate_randomly heap rs ids steps;
      let g1 = canon heap root in
      let inner = Checkpoint.take ~strategy:Checkpoint.Lazy heap [ root ] in
      mutate_randomly heap rs ids steps;
      Checkpoint.rollback inner;
      Checkpoint.dispose inner;
      let mid_ok = Object_graph.equal g1 (canon heap root) in
      Checkpoint.rollback outer;
      Checkpoint.dispose outer;
      mid_ok && Object_graph.equal g0 (canon heap root))

(* The collector never frees anything reachable from the surviving
   roots, and repeated collection is idempotent. *)
let gc_safety_prop =
  QCheck2.Test.make ~name:"gc preserves reachable objects" ~count:100
    QCheck2.Gen.(pair (int_range 1 12) int)
    (fun (n, seed) ->
      let vm = Vm.create () in
      let heap = vm.Vm.heap in
      let rs = Random.State.make [| seed |] in
      let ids = build_random_graph heap rs n in
      let root = Value.Ref ids.(0) in
      Vm.set_global vm "root" root;
      let before = canon heap root in
      ignore (Gc_heap.collect vm);
      let after_first = canon heap root in
      let second = Gc_heap.collect vm in
      Object_graph.equal before after_first && second = 0)

let strategy_cases name strategy =
  [ Alcotest.test_case (name ^ ": rollback restores") `Quick (rollback_restores strategy);
    Alcotest.test_case (name ^ ": alias sees rollback") `Quick (rollback_alias_visible strategy);
    Alcotest.test_case (name ^ ": structural rollback") `Quick (structural_rollback strategy);
    Alcotest.test_case (name ^ ": nested checkpoints") `Quick (nested_checkpoints strategy) ]

let suite =
  strategy_cases "eager" Checkpoint.Eager
  @ strategy_cases "lazy" Checkpoint.Lazy
  @ [ Alcotest.test_case "lazy copies on demand" `Quick test_lazy_copies_on_demand;
      Alcotest.test_case "eager copies upfront" `Quick test_eager_copies_upfront;
      Alcotest.test_case "dispose detaches barrier" `Quick test_dispose_detaches_barrier;
      Alcotest.test_case "with_checkpoint disposes" `Quick test_with_checkpoint_disposes;
      Alcotest.test_case "gc collects unreachable" `Quick test_gc_collects_unreachable;
      Alcotest.test_case "gc extra roots" `Quick test_gc_respects_extra_roots;
      Alcotest.test_case "gc cyclic garbage" `Quick test_gc_cyclic_garbage;
      Alcotest.test_case "rollback then gc" `Quick test_rollback_then_gc;
      QCheck_alcotest.to_alcotest (rollback_prop Checkpoint.Eager);
      QCheck_alcotest.to_alcotest (rollback_prop Checkpoint.Lazy);
      QCheck_alcotest.to_alcotest nested_rollback_prop;
      QCheck_alcotest.to_alcotest gc_safety_prop ]
