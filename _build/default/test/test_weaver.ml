(* Source weaver tests: renaming, wrapper generation, inheritance
   behavior, and transparency of woven programs. *)

open Failatom_core
open Failatom_minilang

let parse = Minilang.parse

let simple_src =
  {|
class A {
  field x;
  method init() { this.x = 0; return this; }
  method bump() { this.x = this.x + 1; return this.x; }
}
function main() {
  var a = new A();
  println(a.bump());
  println(a.bump());
  return 0;
}
|}

let test_mangle_demangle () =
  let id = Method_id.make "Cls" "meth" in
  Alcotest.(check string) "injection mangling" "__orig__Cls__meth"
    (Source_weaver.mangle Source_weaver.Injection id);
  Alcotest.(check string) "masking mangling" "__msk__Cls__meth"
    (Source_weaver.mangle Source_weaver.Masking id);
  (match Source_weaver.demangle "__orig__Cls__meth" with
   | Some got -> Alcotest.(check bool) "demangle inverse" true (Method_id.equal got id)
   | None -> Alcotest.fail "demangle failed");
  (match Source_weaver.demangle "__msk__Cls__meth" with
   | Some got -> Alcotest.(check bool) "demangle msk" true (Method_id.equal got id)
   | None -> Alcotest.fail "demangle msk failed");
  Alcotest.(check bool) "ordinary name not demangled" true
    (Source_weaver.demangle "bump" = None)

let method_names program cls =
  List.concat_map
    (fun decl ->
      match decl with
      | Ast.Class_decl c when String.equal c.Ast.c_name cls ->
        List.map (fun m -> m.Ast.m_name) c.Ast.c_methods
      | Ast.Class_decl _ | Ast.Func_decl _ -> [])
    program

let test_injection_weave_shape () =
  let woven = Source_weaver.weave_injection (parse simple_src) in
  let names = List.sort compare (method_names woven "A") in
  Alcotest.(check (list string)) "renamed plus wrappers"
    [ "__orig__A__bump"; "__orig__A__init"; "bump"; "init" ]
    names;
  (* woven program must still be checkable (reserved names allowed) *)
  Static_check.check ~allow_reserved:true woven

let test_masking_weave_selective () =
  let targets = Method_id.Set.singleton (Method_id.make "A" "bump") in
  let woven = Source_weaver.weave_masking ~targets (parse simple_src) in
  let names = List.sort compare (method_names woven "A") in
  Alcotest.(check (list string)) "only bump wrapped"
    [ "__msk__A__bump"; "bump"; "init" ]
    names

let test_woven_pretty_roundtrip () =
  let woven = Source_weaver.weave_injection (parse simple_src) in
  let printed = Pretty.program_to_string woven in
  let reparsed = Parser.program_of_string printed in
  Alcotest.(check bool) "woven program round-trips" true
    (Ast.equal_program woven reparsed)

(* Inheritance: a wrapper inherited by a subclass must reach the
   defining class's original implementation even when the subclass
   overrides the method (the class-qualified mangled name guarantees
   this). *)
let test_weave_with_override () =
  let src =
    {|
class Base {
  field tag;
  method init() { this.tag = "?"; return this; }
  method who() { this.tag = "base"; return this.tag; }
  method describe() { return "I am " + this.who(); }
}
class Sub extends Base {
  method who() { this.tag = "sub"; return this.tag; }
}
function main() {
  println(new Base().describe());
  println(new Sub().describe());
  println(new Sub().who());
  return 0;
}
|}
  in
  let program = parse src in
  let baseline = Minilang.run_string src in
  Alcotest.(check string) "baseline sanity" "I am base\nI am sub\nsub\n" baseline;
  let woven = Source_weaver.weave_injection program in
  let vm = Compile.program woven in
  (* no injection state: hooks that do nothing *)
  let state =
    Injection.make_state Config.default
      (Analyzer.analyze Config.default program)
      ~threshold:max_int
  in
  Injection.register_hooks state vm;
  ignore (Compile.run_main vm);
  Alcotest.(check string) "woven output unchanged" baseline (Minilang.output vm)

let test_mask_hooks_roundtrip () =
  (* A masked method rolls back exactly the state the paper's Listing 2
     describes, via the __checkpoint/__restore hooks. *)
  let src =
    {|
class C {
  field n;
  method init() { this.n = 0; return this; }
  method breaks() throws IllegalStateException {
    this.n = this.n + 1;
    throw new IllegalStateException("mid-flight");
  }
}
function main() {
  var c = new C();
  try { c.breaks(); } catch (IllegalStateException e) { }
  println(c.n);
  return 0;
}
|}
  in
  let program = parse src in
  Alcotest.(check string) "unmasked leaks" "1\n" (Minilang.run_string src);
  let targets = Method_id.Set.singleton (Method_id.make "C" "breaks") in
  let vm = Mask.load_corrected Config.default ~targets program in
  ignore (Compile.run_main vm);
  Alcotest.(check string) "masked rolls back" "0\n" (Minilang.output vm)

let suite =
  [ Alcotest.test_case "mangle/demangle" `Quick test_mangle_demangle;
    Alcotest.test_case "injection weave shape" `Quick test_injection_weave_shape;
    Alcotest.test_case "masking weave selective" `Quick test_masking_weave_selective;
    Alcotest.test_case "woven pretty round-trip" `Quick test_woven_pretty_roundtrip;
    Alcotest.test_case "weave with override" `Quick test_weave_with_override;
    Alcotest.test_case "mask hooks roll back" `Quick test_mask_hooks_roundtrip ]
