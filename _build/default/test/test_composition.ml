(* Composition of the instrumentation layers: masking under live
   injection in one VM, double weaving, and masking idempotence. *)

open Failatom_core
open Failatom_runtime

let parse = Failatom_minilang.Minilang.parse

let src =
  {|
class Store {
  field total;
  field entries;
  method init() { this.total = 0; this.entries = newArray(8); return this; }
  // pure failure non-atomic: count first, write second
  method record(i, v) throws IndexOutOfBoundsException {
    this.total = this.total + 1;
    this.boundsCheck(i);
    this.entries[i] = v;
    return null;
  }
  method boundsCheck(i) throws IndexOutOfBoundsException {
    if (i < 0 || i >= len(this.entries)) {
      throw new IndexOutOfBoundsException("slot " + i);
    }
    return null;
  }
}
function main() {
  var s = new Store();
  s.record(0, "a");
  s.record(1, "b");
  println(s.total);
  return 0;
}
|}

let record_id = Method_id.make "Store" "record"

(* Masking filters attached UNDER the injection filter: injections that
   interrupt the masked method must observe the rollback — the masked
   method is marked atomic by the very injector that condemned it. *)
let test_binary_masking_under_injection () =
  let program = parse src in
  let config = Config.default in
  let analyzer = Analyzer.analyze config program in
  (* unmasked: record is pure non-atomic *)
  let unmasked = Classify.classify (Detect.run ~flavor:Detect.Load_time_filters program) in
  Alcotest.(check bool) "unmasked verdict" true
    (Classify.verdict unmasked record_id = Some Classify.Pure_non_atomic);
  (* masked VM, then injection attached on top, run the full loop *)
  let rec loop threshold acc =
    let vm = Failatom_minilang.Compile.program program in
    Mask.attach_masking config ~targets:(Method_id.Set.singleton record_id) vm;
    let state = Injection.make_state config analyzer ~threshold in
    Injection.attach state vm;
    (try ignore (Failatom_minilang.Compile.run_main vm)
     with Vm.Mini_raise _ -> ());
    let marks = Injection.marks state in
    match state.Injection.injected with
    | Some _ -> loop (threshold + 1) (marks :: acc)
    | None -> List.concat (List.rev acc)
  in
  let marks = loop 1 [] in
  let record_marks =
    List.filter (fun (m : Marks.mark) -> Method_id.equal m.Marks.meth record_id) marks
  in
  Alcotest.(check bool) "record observed under injection" true (record_marks <> []);
  List.iter
    (fun (m : Marks.mark) ->
      Alcotest.(check bool) "every record mark atomic under masking" true
        m.Marks.atomic)
    record_marks

(* Weaving the corrected program again (mask of a mask) keeps behavior
   and still verifies clean. *)
let test_masking_idempotent () =
  let config = Config.default in
  let program = parse src in
  let once = Mask.correct ~config program in
  let twice =
    Mask.correct ~config ~flavor:Detect.Source_weaving
      ~prepare:(Mask.register_hooks config) once.Mask.corrected
  in
  (* nothing with an original (non-mangled) name is left to wrap *)
  let original_targets =
    Method_id.Set.filter
      (fun id -> Source_weaver.demangle id.Method_id.name = None)
      twice.Mask.wrapped
  in
  Alcotest.(check int) "no original method re-wrapped" 0
    (Method_id.Set.cardinal original_targets)

(* The corrected program still produces the baseline output, even when
   masked and re-woven for injection at the same time (source flavor:
   wrappers of wrappers). *)
let test_double_weave_transparent () =
  let config = Config.default in
  let program = parse src in
  let outcome = Mask.correct ~config program in
  let detection =
    Detect.run ~config ~prepare:(Mask.register_hooks config) outcome.Mask.corrected
  in
  Alcotest.(check bool) "double-woven probe run transparent" true
    detection.Detect.transparent

let suite =
  [ Alcotest.test_case "masking under injection" `Quick test_binary_masking_under_injection;
    Alcotest.test_case "masking idempotent" `Quick test_masking_idempotent;
    Alcotest.test_case "double weave transparent" `Quick test_double_weave_transparent ]
