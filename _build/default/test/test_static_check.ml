(* Static checker tests: structural defects must be rejected before a
   program reaches the injection pipeline. *)

open Failatom_minilang

let check_ok ?allow_reserved src =
  match Minilang.parse ?allow_reserved src with
  | _ -> ()
  | exception Static_check.Check_error errs ->
    Alcotest.failf "unexpected check errors: %a"
      Fmt.(list ~sep:semi Static_check.pp_error)
      errs

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let check_rejected ?allow_reserved ~substring src =
  match Minilang.parse ?allow_reserved src with
  | _ -> Alcotest.failf "expected a check error mentioning %S" substring
  | exception Static_check.Check_error errs ->
    let messages = String.concat "; " (List.map (fun e -> e.Static_check.message) errs) in
    if not (contains ~needle:substring messages) then
      Alcotest.failf "errors %S do not mention %S" messages substring

let test_accepts_valid () =
  check_ok
    {|
class A { field x; method m(p) throws Exception { return p; } }
class B extends A { method n() { return super.m(1); } }
function main() { var b = new B(); return b.n(); }
|}

let test_duplicates () =
  check_rejected ~substring:"duplicate class" "class A { } class A { }";
  check_rejected ~substring:"duplicate function" "function f() { } function f() { }";
  check_rejected ~substring:"duplicate method"
    "class A { method m() { return 1; } method m() { return 2; } }";
  check_rejected ~substring:"duplicate field" "class A { field x; field x; }";
  check_rejected ~substring:"shadows an inherited field"
    "class A { field x; } class B extends A { field x; }"

let test_unknown_names () =
  check_rejected ~substring:"unknown superclass" "class A extends Nope { }";
  check_rejected ~substring:"unknown class" "function main() { return new Nope(); }";
  check_rejected ~substring:"unknown function" "function main() { return nope(); }";
  check_rejected ~substring:"unknown exception class"
    "function main() { try { return 1; } catch (Nope e) { } return 0; }";
  check_rejected ~substring:"throws clause names unknown class"
    "class A { method m() throws Nope { return 1; } }"

let test_inheritance_cycle () =
  check_rejected ~substring:"cycle" "class A extends B { } class B extends A { }"

let test_shadowing_builtins () =
  check_rejected ~substring:"shadows a builtin" "function println(x) { return x; }";
  check_rejected ~substring:"shadows a built-in exception class"
    "class Exception { }"

let test_this_and_super_scope () =
  check_rejected ~substring:"'this' outside" "function main() { return this; }";
  check_rejected ~substring:"'super' outside" "function main() { return super.m(); }";
  check_rejected ~substring:"no superclass"
    "class A { method m() { return super.m(); } }"

let test_loop_scope () =
  check_rejected ~substring:"'break' outside" "function main() { break; }";
  check_rejected ~substring:"'continue' outside"
    "class A { method m() { continue; } }";
  check_ok "function main() { while (true) { if (true) { break; } } return 0; }"

let test_arity () =
  check_rejected ~substring:"expects 1 argument" "function f(a) { return a; } function main() { return f(); }";
  check_rejected ~substring:"expects 1 argument" "function main() { return len(); }"

let test_reserved_names () =
  check_rejected ~substring:"reserved" "function main() { var __x = 1; return __x; }";
  check_rejected ~substring:"reserved" "function main() { return __snapshot(1, 2); }";
  (* the weaver's output is allowed to use reserved names and hooks *)
  check_ok ~allow_reserved:true
    "class A { method __orig__A__m() { return 1; } } function main() { __hook(); return 0; }"

let suite =
  [ Alcotest.test_case "accepts valid" `Quick test_accepts_valid;
    Alcotest.test_case "duplicates" `Quick test_duplicates;
    Alcotest.test_case "unknown names" `Quick test_unknown_names;
    Alcotest.test_case "inheritance cycle" `Quick test_inheritance_cycle;
    Alcotest.test_case "shadowing builtins" `Quick test_shadowing_builtins;
    Alcotest.test_case "this/super scope" `Quick test_this_and_super_scope;
    Alcotest.test_case "loop scope" `Quick test_loop_scope;
    Alcotest.test_case "arity" `Quick test_arity;
    Alcotest.test_case "reserved names" `Quick test_reserved_names ]
