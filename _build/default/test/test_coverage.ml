(* Injection coverage reporting tests. *)

open Failatom_core

let parse = Failatom_minilang.Minilang.parse

let src =
  {|
class Used {
  field n;
  method init() { this.n = 0; return this; }
  method hot() { this.n = this.n + 1; return this.n; }
  method declared() throws IllegalStateException { return this.n; }
}
class Dormant {
  field x;
  method init() { this.x = 0; return this; }
  method neverCalled() { return this.x; }
  method alsoIdle() throws IllegalArgumentException { return this.x; }
}
function main() {
  var u = new Used();
  u.hot();
  u.hot();
  u.declared();
  println(u.n);
  return 0;
}
|}

let coverage = lazy (Coverage.of_detection (Detect.run (parse src)))

let find name =
  List.find
    (fun (mc : Coverage.method_coverage) ->
      String.equal (Method_id.to_string mc.Coverage.id) name)
    (Lazy.force coverage).Coverage.methods

let test_full_loop_covers_used_methods () =
  let c = Lazy.force coverage in
  Alcotest.(check int) "all used methods fully covered" (List.length c.Coverage.methods)
    c.Coverage.fully_covered;
  List.iter
    (fun mc -> Alcotest.(check (float 0.001)) "ratio 1.0" 1.0 (Coverage.ratio mc))
    c.Coverage.methods

let test_sited_run_accounting () =
  let hot = find "Used.hot" in
  (* 2 calls x 2 generic exception classes *)
  Alcotest.(check int) "hot sited runs" 4 hot.Coverage.sited_runs;
  Alcotest.(check int) "hot calls" 2 hot.Coverage.calls;
  Alcotest.(check (list string)) "hot exercised"
    [ "NullPointerException"; "OutOfMemoryError" ]
    hot.Coverage.exercised;
  let declared = find "Used.declared" in
  Alcotest.(check int) "declared sited runs" 3 declared.Coverage.sited_runs;
  Alcotest.(check (list string)) "declared classes"
    [ "IllegalStateException"; "NullPointerException"; "OutOfMemoryError" ]
    declared.Coverage.exercised

let test_unused_methods_reported () =
  let c = Lazy.force coverage in
  Alcotest.(check (list string)) "untested methods"
    [ "Dormant.alsoIdle"; "Dormant.init"; "Dormant.neverCalled" ]
    (List.map Method_id.to_string c.Coverage.unused)

let test_total_runs_match_detection () =
  let d = Detect.run (parse src) in
  let c = Coverage.of_detection d in
  Alcotest.(check int) "totals" d.Detect.injections c.Coverage.total_runs;
  (* sited runs partition the injection runs *)
  Alcotest.(check int) "sited runs sum to total" d.Detect.injections
    (List.fold_left
       (fun acc (mc : Coverage.method_coverage) -> acc + mc.Coverage.sited_runs)
       0 c.Coverage.methods)

let test_pp_mentions_untested () =
  let rendered = Fmt.str "%a" Coverage.pp (Lazy.force coverage) in
  let contains ~needle haystack =
    let nl = String.length needle and hl = String.length haystack in
    let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
    nl = 0 || go 0
  in
  Alcotest.(check bool) "mentions never-called section" true
    (contains ~needle:"NEVER CALLED" rendered);
  Alcotest.(check bool) "mentions dormant method" true
    (contains ~needle:"Dormant.neverCalled" rendered)

let suite =
  [ Alcotest.test_case "full loop covers used" `Quick test_full_loop_covers_used_methods;
    Alcotest.test_case "sited run accounting" `Quick test_sited_run_accounting;
    Alcotest.test_case "unused methods reported" `Quick test_unused_methods_reported;
    Alcotest.test_case "totals match" `Quick test_total_runs_match_detection;
    Alcotest.test_case "pp mentions untested" `Quick test_pp_mentions_untested ]
