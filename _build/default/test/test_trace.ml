(* Call-trace facility tests. *)

open Failatom_core

let parse = Failatom_minilang.Minilang.parse

let src =
  {|
class Box {
  field v;
  method init(v) { this.v = v; return this; }
  method get() { return this.v; }
  method bump() { this.v = this.v + 1; return this.get(); }
  method explode() throws IllegalStateException {
    throw new IllegalStateException("x");
  }
}
function main() {
  var b = new Box(5);
  b.bump();
  try { b.explode(); } catch (IllegalStateException e) { }
  println(b.get());
  return 0;
}
|}

let trace = lazy (Trace.run_traced (parse src))

let test_event_sequence () =
  let t, output, escaped = Lazy.force trace in
  Alcotest.(check string) "output" "6\n" output;
  Alcotest.(check (option string)) "no escape" None escaped;
  let names =
    List.map (fun (e : Trace.event) -> Method_id.to_string e.Trace.meth) (Trace.events t)
  in
  (* completion order: callees before callers *)
  Alcotest.(check (list string)) "events"
    [ "Box.init"; "Box.get"; "Box.bump"; "Box.explode"; "Box.get" ]
    names

let test_depths_and_outcomes () =
  let t, _, _ = Lazy.force trace in
  let by_name name =
    List.find
      (fun (e : Trace.event) -> String.equal e.Trace.meth.Method_id.name name)
      (Trace.events t)
  in
  Alcotest.(check int) "bump at depth 0" 0 (by_name "bump").Trace.depth;
  (* the get() inside bump is nested *)
  Alcotest.(check int) "nested get depth" 1 (by_name "get").Trace.depth;
  (match (by_name "explode").Trace.outcome with
   | Trace.Raised cls -> Alcotest.(check string) "raised" "IllegalStateException" cls
   | Trace.Returned _ -> Alcotest.fail "explode should raise");
  (match (by_name "bump").Trace.outcome with
   | Trace.Returned v -> Alcotest.(check string) "bump result" "6" v
   | Trace.Raised _ -> Alcotest.fail "bump returns")

let test_receiver_rendering () =
  let t, _, _ = Lazy.force trace in
  let bump =
    List.find
      (fun (e : Trace.event) -> String.equal e.Trace.meth.Method_id.name "bump")
      (Trace.events t)
  in
  Alcotest.(check string) "receiver rendered with graph size" "Box#1" bump.Trace.receiver

let test_max_events_cap () =
  let program =
    parse
      {|
class Spin {
  field n;
  method init() { this.n = 0; return this; }
  method step() { this.n = this.n + 1; return this.n; }
}
function main() {
  var s = new Spin();
  for (var i = 0; i < 100; i = i + 1) { s.step(); }
  return 0;
}
|}
  in
  let vm = Failatom_minilang.Compile.program program in
  let t = Trace.create ~max_events:10 () in
  Trace.attach t vm;
  ignore (Failatom_minilang.Compile.run_main vm);
  Alcotest.(check int) "capped" 10 (List.length (Trace.events t))

let test_pp () =
  let t, _, _ = Lazy.force trace in
  let rendered = Fmt.str "%a" Trace.pp t in
  Alcotest.(check bool) "pp mentions explode" true
    (String.length rendered > 0
     &&
     let needle = "!! IllegalStateException" in
     let rec go i =
       i + String.length needle <= String.length rendered
       && (String.sub rendered i (String.length needle) = needle || go (i + 1))
     in
     go 0)

let suite =
  [ Alcotest.test_case "event sequence" `Quick test_event_sequence;
    Alcotest.test_case "depths and outcomes" `Quick test_depths_and_outcomes;
    Alcotest.test_case "receiver rendering" `Quick test_receiver_rendering;
    Alcotest.test_case "max events cap" `Quick test_max_events_cap;
    Alcotest.test_case "pretty printing" `Quick test_pp ]
