(* Differential tests of the workload data structures.

   The Table-1 applications are real container/engine implementations in
   MiniLang; these tests drive them with generated operation sequences
   and compare every observable result against a plain OCaml model.
   Operation sequences are generated valid (in-range), so the model does
   not need to mirror the apps' deliberate failure non-atomicity — that
   part is covered by the detection tests. *)

open Failatom_apps

(* The classes of an application, without its bundled driver (every app
   source ends with its [function main]). *)
let classes_of (app : Registry.t) =
  let source = app.Registry.source in
  let marker = "function main()" in
  let rec find i =
    if i + String.length marker > String.length source then
      Alcotest.failf "%s has no main" app.Registry.name
    else if String.sub source i (String.length marker) = marker then i
    else find (i + 1)
  in
  String.sub source 0 (find 0)

let run_driver app driver =
  Failatom_minilang.Minilang.run_string (classes_of app ^ driver)

(* ---------------- LinkedList vs OCaml list model ---------------- *)

type list_op = Add_last of int | Add_first of int | Insert_at of int * int
             | Remove_at of int | Get of int | Index_of of int | Count

let gen_list_ops =
  let open QCheck2.Gen in
  let rec build size n acc =
    if n = 0 then return (List.rev acc)
    else
      let stop = return (List.rev acc) in
      let add_last = map (fun v -> `Continue (Add_last v, size + 1)) (int_range 0 50) in
      let add_first = map (fun v -> `Continue (Add_first v, size + 1)) (int_range 0 50) in
      let choices =
        [ add_last; add_first ]
        @ (if size > 0 then
             [ map2 (fun i v -> `Continue (Insert_at (i, v), size + 1))
                 (int_range 0 size) (int_range 0 50);
               map (fun i -> `Continue (Remove_at i, size - 1)) (int_range 0 (size - 1));
               map (fun i -> `Continue (Get i, size)) (int_range 0 (size - 1));
               map (fun v -> `Continue (Index_of v, size)) (int_range 0 50);
               return (`Continue (Count, size)) ]
           else [])
      in
      oneof choices >>= function
      | `Continue (op, size') -> build size' (n - 1) (op :: acc)
      | `Stop -> stop
  in
  QCheck2.Gen.(int_range 1 25 >>= fun n -> build 0 n [])

(* Renders ops as a MiniLang driver that prints each observation. *)
let list_driver ops =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "function main() {\n  var l = new LinkedList();\n";
  List.iter
    (fun op ->
      Buffer.add_string buf
        (match op with
         | Add_last v -> Printf.sprintf "  l.addLast(%d);\n" v
         | Add_first v -> Printf.sprintf "  l.addFirst(%d);\n" v
         | Insert_at (i, v) -> Printf.sprintf "  l.insertAt(%d, %d);\n" i v
         | Remove_at i -> Printf.sprintf "  println(\"rm \" + l.removeAt(%d));\n" i
         | Get i -> Printf.sprintf "  println(\"get \" + l.get(%d));\n" i
         | Index_of v -> Printf.sprintf "  println(\"idx \" + l.indexOf(%d));\n" v
         | Count -> "  println(\"n \" + l.count());\n"))
    ops;
  Buffer.add_string buf "  var arr = l.toArray();\n";
  Buffer.add_string buf
    "  var s = \"\";\n  for (var i = 0; i < len(arr); i = i + 1) { s = s + arr[i] + \",\"; }\n";
  Buffer.add_string buf "  println(\"final \" + s);\n  return 0;\n}\n";
  Buffer.contents buf

(* OCaml model of the same operations. *)
let list_model ops =
  let buf = Buffer.create 256 in
  let insert_at i v l =
    let rec go i acc = function
      | rest when i = 0 -> List.rev_append acc (v :: rest)
      | [] -> List.rev (v :: acc)
      | x :: rest -> go (i - 1) (x :: acc) rest
    in
    go i [] l
  in
  let remove_at i l =
    let rec go i acc = function
      | x :: rest when i = 0 -> (x, List.rev_append acc rest)
      | x :: rest -> go (i - 1) (x :: acc) rest
      | [] -> assert false
    in
    go i [] l
  in
  let index_of v l =
    let rec go i = function
      | [] -> -1
      | x :: _ when x = v -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 l
  in
  let state =
    List.fold_left
      (fun l op ->
        match op with
        | Add_last v -> l @ [ v ]
        | Add_first v -> v :: l
        | Insert_at (i, v) -> insert_at i v l
        | Remove_at i ->
          let x, rest = remove_at i l in
          Buffer.add_string buf (Printf.sprintf "rm %d\n" x);
          rest
        | Get i ->
          Buffer.add_string buf (Printf.sprintf "get %d\n" (List.nth l i));
          l
        | Index_of v ->
          Buffer.add_string buf (Printf.sprintf "idx %d\n" (index_of v l));
          l
        | Count ->
          Buffer.add_string buf (Printf.sprintf "n %d\n" (List.length l));
          l)
      [] ops
  in
  Buffer.add_string buf
    (Printf.sprintf "final %s\n"
       (String.concat "" (List.map (fun v -> string_of_int v ^ ",") state)));
  Buffer.contents buf

let linked_list_app = lazy (Option.get (Registry.find "LinkedList"))

let prop_linked_list_matches_model =
  QCheck2.Test.make ~name:"LinkedList agrees with the OCaml list model" ~count:60
    gen_list_ops
    (fun ops ->
      let got = run_driver (Lazy.force linked_list_app) (list_driver ops) in
      let expected = list_model ops in
      if String.equal got expected then true
      else
        QCheck2.Test.fail_reportf "mismatch:@.got:@.%s@.expected:@.%s" got expected)

(* The fixed variant must agree with the same model. *)
let prop_fixed_linked_list_matches_model =
  QCheck2.Test.make ~name:"LinkedListFixed agrees with the model" ~count:40
    gen_list_ops
    (fun ops ->
      let got = run_driver Registry.linked_list_fixed (list_driver ops) in
      String.equal got (list_model ops))

(* ---------------- RBTree vs OCaml Set model ---------------- *)

module Int_set = Set.Make (Int)

type set_op = Insert of int | Remove of int | Member of int | Least | Cardinal

let gen_set_ops =
  let open QCheck2.Gen in
  list_size (1 -- 40)
    (oneof
       [ map (fun k -> Insert k) (int_range 0 60);
         map (fun k -> Remove k) (int_range 0 60);
         map (fun k -> Member k) (int_range 0 60);
         return Least;
         return Cardinal ])

let set_driver ops =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "function main() {\n  var t = new RBTree();\n";
  List.iter
    (fun op ->
      Buffer.add_string buf
        (match op with
         | Insert k -> Printf.sprintf "  println(\"ins \" + t.insert(%d));\n" k
         | Remove k ->
           Printf.sprintf "  println(\"del \" + t.removeElem(%d));\n  check(t.audit(), \"post-delete invariants\");\n" k
         | Member k -> Printf.sprintf "  println(\"mem \" + t.containsElem(%d));\n" k
         | Least ->
           "  if (t.count() > 0) { println(\"min \" + t.least()); } else { println(\"min -\"); }\n"
         | Cardinal -> "  println(\"n \" + t.count());\n"))
    ops;
  Buffer.add_string buf "  check(t.audit(), \"red-black invariants\");\n";
  Buffer.add_string buf "  var arr = t.toSortedArray();\n";
  Buffer.add_string buf
    "  var s = \"\";\n  for (var i = 0; i < len(arr); i = i + 1) { s = s + arr[i] + \",\"; }\n";
  Buffer.add_string buf "  println(\"final \" + s);\n  return 0;\n}\n";
  Buffer.contents buf

let set_model ops =
  let buf = Buffer.create 256 in
  let state =
    List.fold_left
      (fun s op ->
        match op with
        | Insert k ->
          Buffer.add_string buf
            (Printf.sprintf "ins %b\n" (not (Int_set.mem k s)));
          Int_set.add k s
        | Remove k ->
          Buffer.add_string buf (Printf.sprintf "del %b\n" (Int_set.mem k s));
          Int_set.remove k s
        | Member k ->
          Buffer.add_string buf (Printf.sprintf "mem %b\n" (Int_set.mem k s));
          s
        | Least ->
          Buffer.add_string buf
            (match Int_set.min_elt_opt s with
             | Some k -> Printf.sprintf "min %d\n" k
             | None -> "min -\n");
          s
        | Cardinal ->
          Buffer.add_string buf (Printf.sprintf "n %d\n" (Int_set.cardinal s));
          s)
      Int_set.empty ops
  in
  Buffer.add_string buf
    (Printf.sprintf "final %s\n"
       (String.concat ""
          (List.map (fun v -> string_of_int v ^ ",") (Int_set.elements state))));
  Buffer.contents buf

let rb_tree_app = lazy (Option.get (Registry.find "RBTree"))

let prop_rb_tree_matches_model =
  QCheck2.Test.make ~name:"RBTree agrees with the OCaml Set model (and audits)"
    ~count:60 gen_set_ops
    (fun ops ->
      let got = run_driver (Lazy.force rb_tree_app) (set_driver ops) in
      let expected = set_model ops in
      if String.equal got expected then true
      else
        QCheck2.Test.fail_reportf "mismatch:@.got:@.%s@.expected:@.%s" got expected)

(* ---------------- HashedMap vs OCaml Hashtbl model ---------------- *)

type map_op = Put of string * int | Get_or of string | Contains of string
            | Remove_present of string | Size

let keys = [| "ka"; "kb"; "kc"; "kd"; "ke"; "kf"; "kg"; "kh" |]

let gen_map_ops =
  let open QCheck2.Gen in
  let key = map (fun i -> keys.(i)) (int_range 0 (Array.length keys - 1)) in
  list_size (1 -- 30)
    (oneof
       [ map2 (fun k v -> Put (k, v)) key (int_range 0 99);
         map (fun k -> Get_or k) key;
         map (fun k -> Contains k) key;
         map (fun k -> Remove_present k) key;
         return Size ])

let map_driver ops =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "function main() {\n  var m = new HashedMap(2);\n";
  List.iter
    (fun op ->
      Buffer.add_string buf
        (match op with
         | Put (k, v) -> Printf.sprintf "  m.put(\"%s\", %d);\n" k v
         | Get_or k -> Printf.sprintf "  println(\"get \" + m.getOr(\"%s\", -1));\n" k
         | Contains k -> Printf.sprintf "  println(\"has \" + m.containsKey(\"%s\"));\n" k
         | Remove_present k ->
           Printf.sprintf
             "  if (m.containsKey(\"%s\")) { println(\"rm \" + m.remove(\"%s\")); } else { println(\"rm -\"); }\n"
             k k
         | Size -> "  println(\"n \" + m.count());\n"))
    ops;
  Buffer.add_string buf "  println(\"final \" + m.count());\n  return 0;\n}\n";
  Buffer.contents buf

let map_model ops =
  let buf = Buffer.create 256 in
  let table = Hashtbl.create 8 in
  List.iter
    (fun op ->
      match op with
      | Put (k, v) -> Hashtbl.replace table k v
      | Get_or k ->
        Buffer.add_string buf
          (Printf.sprintf "get %d\n" (Option.value ~default:(-1) (Hashtbl.find_opt table k)))
      | Contains k ->
        Buffer.add_string buf (Printf.sprintf "has %b\n" (Hashtbl.mem table k))
      | Remove_present k ->
        (match Hashtbl.find_opt table k with
         | Some v ->
           Hashtbl.remove table k;
           Buffer.add_string buf (Printf.sprintf "rm %d\n" v)
         | None -> Buffer.add_string buf "rm -\n")
      | Size -> Buffer.add_string buf (Printf.sprintf "n %d\n" (Hashtbl.length table)))
    ops;
  Buffer.add_string buf (Printf.sprintf "final %d\n" (Hashtbl.length table));
  Buffer.contents buf

let hashed_map_app = lazy (Option.get (Registry.find "HashedMap"))

let prop_hashed_map_matches_model =
  QCheck2.Test.make ~name:"HashedMap agrees with the OCaml Hashtbl model" ~count:60
    gen_map_ops
    (fun ops ->
      let got = run_driver (Lazy.force hashed_map_app) (map_driver ops) in
      let expected = map_model ops in
      if String.equal got expected then true
      else
        QCheck2.Test.fail_reportf "mismatch:@.got:@.%s@.expected:@.%s" got expected)

(* ---------------- RegExp vs OCaml reference matcher ---------------- *)

(* A tiny reference implementation of the same regex dialect, used to
   cross-check the MiniLang engine on generated patterns. *)
type re = Chr of char | Any | Seq of re list | Alt of re * re | Star of re
        | Plus of re | Opt of re

let rec re_to_pattern = function
  | Chr c -> String.make 1 c
  | Any -> "."
  | Seq rs -> String.concat "" (List.map atom_pattern rs)
  | Alt (a, b) -> re_to_pattern a ^ "|" ^ re_to_pattern b
  | Star r -> atom_pattern r ^ "*"
  | Plus r -> atom_pattern r ^ "+"
  | Opt r -> atom_pattern r ^ "?"

and atom_pattern r =
  match r with
  | Chr _ | Any -> re_to_pattern r
  | Seq [ single ] -> atom_pattern single
  | Seq _ | Alt _ | Star _ | Plus _ | Opt _ -> "(" ^ re_to_pattern r ^ ")"

(* Reference matcher via continuations. *)
let re_matches re s =
  let n = String.length s in
  let rec m re pos k =
    match re with
    | Chr c -> pos < n && s.[pos] = c && k (pos + 1)
    | Any -> pos < n && k (pos + 1)
    | Seq rs ->
      let rec seq rs pos k =
        match rs with [] -> k pos | r :: rest -> m r pos (fun p -> seq rest p k)
      in
      seq rs pos k
    | Alt (a, b) -> m a pos k || m b pos k
    | Opt r -> m r pos k || k pos
    | Star r ->
      let rec star pos depth =
        (depth < 50 && m r pos (fun p -> p <> pos && star p (depth + 1))) || k pos
      in
      star pos 0
    | Plus r -> m (Seq [ r; Star r ]) pos k
  in
  m re 0 (fun p -> p = n)

let gen_re =
  let open QCheck2.Gen in
  let chr = map (fun c -> Chr c) (oneofl [ 'a'; 'b'; 'c' ]) in
  sized @@ fix (fun self size ->
      if size <= 0 then oneof [ chr; return Any ]
      else
        let sub = self (size / 2) in
        (* repetition bodies must be non-empty-matching, like the engine *)
        let body = oneof [ chr; return Any ] in
        oneof
          [ chr;
            map (fun rs -> Seq rs) (list_size (1 -- 3) sub);
            map2 (fun a b -> Alt (a, b)) sub sub;
            map (fun r -> Star r) body;
            map (fun r -> Plus r) body;
            map (fun r -> Opt r) sub ])

let gen_input =
  QCheck2.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (0 -- 6))

let reg_exp_app = lazy (Option.get (Registry.find "RegExp"))

let prop_regexp_matches_reference =
  QCheck2.Test.make ~name:"RegExp engine agrees with a reference matcher" ~count:120
    QCheck2.Gen.(pair gen_re gen_input)
    (fun (re, input) ->
      let pattern = re_to_pattern re in
      let driver =
        Printf.sprintf
          "function main() {\n\
          \  var compiler = new ReCompiler();\n\
          \  var matcher = new ReMatcher(compiler.compile(\"%s\"), true);\n\
          \  println(matcher.matches(\"%s\"));\n\
          \  return 0;\n\
           }\n"
          pattern input
      in
      let got = String.trim (run_driver (Lazy.force reg_exp_app) driver) in
      let expected = string_of_bool (re_matches re input) in
      if String.equal got expected then true
      else
        QCheck2.Test.fail_reportf "pattern %S on %S: engine=%s reference=%s" pattern
          input got expected)

(* ---------------- PriorityQueue vs sorted-list model ---------------- *)

type pq_op = Push of int | Pop_min | Peek_min | Heap_size

let gen_pq_ops =
  let open QCheck2.Gen in
  list_size (1 -- 30)
    (frequency
       [ (3, map (fun v -> Push v) (int_range 0 99));
         (2, return Pop_min);
         (1, return Peek_min);
         (1, return Heap_size) ])

let pq_driver ops =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "function main() {\n  var pq = new PriorityQueue(1);\n";
  List.iter
    (fun op ->
      Buffer.add_string buf
        (match op with
         | Push v -> Printf.sprintf "  pq.push(%d);\n" v
         | Pop_min ->
           "  if (pq.count() > 0) { println(\"pop \" + pq.popMin()); } else { println(\"pop -\"); }\n"
         | Peek_min ->
           "  if (pq.count() > 0) { println(\"top \" + pq.peekMin()); } else { println(\"top -\"); }\n"
         | Heap_size -> "  println(\"n \" + pq.count());\n"))
    ops;
  Buffer.add_string buf
    "  check(pq.heapOrderOk(), \"final heap order\");\n  println(\"final \" + pq.count());\n  return 0;\n}\n";
  Buffer.contents buf

let pq_model ops =
  let buf = Buffer.create 256 in
  let heap = ref [] in
  List.iter
    (fun op ->
      match op with
      | Push v -> heap := List.sort compare (v :: !heap)
      | Pop_min -> (
        match !heap with
        | [] -> Buffer.add_string buf "pop -\n"
        | x :: rest ->
          heap := rest;
          Buffer.add_string buf (Printf.sprintf "pop %d\n" x))
      | Peek_min -> (
        match !heap with
        | [] -> Buffer.add_string buf "top -\n"
        | x :: _ -> Buffer.add_string buf (Printf.sprintf "top %d\n" x))
      | Heap_size -> Buffer.add_string buf (Printf.sprintf "n %d\n" (List.length !heap)))
    ops;
  Buffer.add_string buf (Printf.sprintf "final %d\n" (List.length !heap));
  Buffer.contents buf

let std_q_app = lazy (Option.get (Registry.find "stdQ"))

let prop_priority_queue_matches_model =
  QCheck2.Test.make ~name:"PriorityQueue agrees with the sorted-list model" ~count:60
    gen_pq_ops
    (fun ops ->
      let got = run_driver (Lazy.force std_q_app) (pq_driver ops) in
      let expected = pq_model ops in
      if String.equal got expected then true
      else
        QCheck2.Test.fail_reportf "mismatch:@.got:@.%s@.expected:@.%s" got expected)

(* ---------------- focused scenario tests ---------------- *)

let test_deque_wraparound () =
  let app = Option.get (Registry.find "stdQ") in
  let driver =
    {|
function main() {
  var dq = new RingDeque(4);
  // march the window around the ring several times
  for (var i = 0; i < 20; i = i + 1) {
    dq.pushBack(i);
    if (i >= 3) { println(dq.popFront()); }
  }
  println("left " + dq.count());
  while (dq.count() > 0) { println("tail " + dq.popBack()); }
  return 0;
}
|}
  in
  let got = run_driver app driver in
  let expected =
    String.concat "\n"
      (List.map string_of_int (List.init 17 Fun.id)
      @ [ "left 3"; "tail 19"; "tail 18"; "tail 17"; "" ])
  in
  Alcotest.(check string) "wraparound order" expected got

let test_xml_roundtrip_stability () =
  let app = Option.get (Registry.find "xml2xml1") in
  let driver =
    {|
function main() {
  var doc = "<a x=\"1\"><b>t1</b><c y=\"2\" z=\"3\"/><d>t2</d></a>";
  var parser = new XmlParser();
  var writer = new XmlWriter();
  var once = writer.writeDocument(parser.parse(doc));
  var twice = writer.writeDocument(parser.parse(once));
  check(once == twice, "write-parse-write is stable");
  check(once == doc, "canonical document unchanged");
  println("ok");
  return 0;
}
|}
  in
  Alcotest.(check string) "xml roundtrip" "ok\n" (run_driver app driver)

let test_linked_buffer_chunk_boundaries () =
  let app = Option.get (Registry.find "LinkedBuffer") in
  let driver =
    {|
function main() {
  var buf = new LinkedBuffer(3);
  for (var i = 0; i < 9; i = i + 1) { buf.append(i); }
  check(buf.chunks() == 3, "exactly full chunks");
  for (var i = 0; i < 9; i = i + 1) { check(buf.take() == i, "fifo " + i); }
  check(buf.isEmpty(), "drained");
  buf.append(42);
  check(buf.peek() == 42, "reusable after drain");
  println("ok");
  return 0;
}
|}
  in
  Alcotest.(check string) "chunk boundaries" "ok\n" (run_driver app driver)

let suite =
  [ QCheck_alcotest.to_alcotest prop_linked_list_matches_model;
    QCheck_alcotest.to_alcotest prop_fixed_linked_list_matches_model;
    QCheck_alcotest.to_alcotest prop_rb_tree_matches_model;
    QCheck_alcotest.to_alcotest prop_hashed_map_matches_model;
    QCheck_alcotest.to_alcotest prop_regexp_matches_reference;
    QCheck_alcotest.to_alcotest prop_priority_queue_matches_model;
    Alcotest.test_case "deque wraparound" `Quick test_deque_wraparound;
    Alcotest.test_case "xml write/parse stability" `Quick test_xml_roundtrip_stability;
    Alcotest.test_case "buffer chunk boundaries" `Quick test_linked_buffer_chunk_boundaries ]
