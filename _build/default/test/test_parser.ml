(* Parser unit tests plus the parse/pretty round-trip property over
   randomly generated ASTs — the invariant the source weaver relies on
   when it turns woven trees back into text. *)

open Failatom_minilang

let parse_expr = Parser.expr_of_string
let parse_program = Parser.program_of_string

let expr_desc src =
  let e = parse_expr src in
  (Ast.strip_expr e).Ast.e

let test_precedence () =
  (match expr_desc "1 + 2 * 3" with
   | Ast.Binary (Ast.Add, { e = Ast.Int_lit 1; _ }, { e = Ast.Binary (Ast.Mul, _, _); _ }) -> ()
   | _ -> Alcotest.fail "mul binds tighter than add");
  (match expr_desc "(1 + 2) * 3" with
   | Ast.Binary (Ast.Mul, { e = Ast.Binary (Ast.Add, _, _); _ }, _) -> ()
   | _ -> Alcotest.fail "parens override");
  (match expr_desc "1 - 2 - 3" with
   | Ast.Binary (Ast.Sub, { e = Ast.Binary (Ast.Sub, _, _); _ }, { e = Ast.Int_lit 3; _ }) -> ()
   | _ -> Alcotest.fail "sub left associative");
  (match expr_desc "a || b && c" with
   | Ast.Or (_, { e = Ast.And (_, _); _ }) -> ()
   | _ -> Alcotest.fail "and binds tighter than or");
  (match expr_desc "a == b < c" with
   | Ast.Binary (Ast.Eq, _, { e = Ast.Binary (Ast.Lt, _, _); _ }) -> ()
   | _ -> Alcotest.fail "comparison binds tighter than equality")

let test_postfix_chains () =
  match expr_desc "a.b.c(1)[2].d" with
  | Ast.Field ({ e = Ast.Index ({ e = Ast.Call ({ e = Ast.Field _; _ }, "c", [ _ ]); _ }, _); _ }, "d")
    -> ()
  | _ -> Alcotest.fail "postfix chain shape"

let test_statements () =
  let prog =
    parse_program
      {|
function f(a, b) {
  var x = a;
  x = x + 1;
  if (x > 0) { return x; } else { return -x; }
  while (true) { break; }
  for (var i = 0; i < 3; i = i + 1) { continue; }
  try { throw new Exception("e"); } catch (Exception e) { } finally { }
  a[0] = b.f;
}
|}
  in
  match prog with
  | [ Ast.Func_decl f ] ->
    Alcotest.(check int) "statement count" 7 (List.length f.Ast.f_body)
  | _ -> Alcotest.fail "one function"

let test_class_decl () =
  let prog =
    parse_program
      {|
class A extends B {
  field x;
  field y;
  method m(p) throws E1, E2 { return p; }
  method n() { return null; }
}
|}
  in
  match prog with
  | [ Ast.Class_decl c ] ->
    Alcotest.(check (option string)) "super" (Some "B") c.Ast.c_super;
    Alcotest.(check (list string)) "fields" [ "x"; "y" ] c.Ast.c_fields;
    Alcotest.(check int) "methods" 2 (List.length c.Ast.c_methods);
    let m = List.hd c.Ast.c_methods in
    Alcotest.(check (list string)) "throws" [ "E1"; "E2" ] m.Ast.m_throws
  | _ -> Alcotest.fail "one class"

let expect_parse_error src =
  try
    ignore (parse_program src);
    Alcotest.failf "expected parse error on %S" src
  with Parser.Parse_error _ -> ()

let test_errors () =
  expect_parse_error "function f( { }";
  expect_parse_error "class { }";
  expect_parse_error "function f() { var = 3; }";
  expect_parse_error "function f() { 1 + ; }";
  expect_parse_error "function f() { try { } }" (* try needs catch/finally *);
  expect_parse_error "function f() { x.1; }";
  expect_parse_error "function f() { if x { } }";
  expect_parse_error "function f() { f(1)(2); }" (* no first-class calls *)

(* ---------------- round-trip property ---------------- *)

let gen_ident =
  QCheck2.Gen.(oneofl [ "a"; "b"; "cx"; "dd"; "foo"; "barBaz"; "v1" ])

let gen_cls = QCheck2.Gen.(oneofl [ "K"; "L"; "Exception"; "MyThing" ])

let gen_expr =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      let leaf =
        oneof
          [ map (fun i -> Ast.mk_expr (Ast.Int_lit (abs i))) small_int;
            map (fun s -> Ast.str_lit s) (string_size ~gen:(char_range 'a' 'z') (0 -- 5));
            map (fun b -> Ast.mk_expr (Ast.Bool_lit b)) bool;
            return (Ast.mk_expr Ast.Null_lit);
            return Ast.this_e;
            map Ast.var gen_ident ]
      in
      if n <= 0 then leaf
      else
        let sub = self (n / 3) in
        oneof
          [ leaf;
            map2 (fun op (a, b) -> Ast.mk_expr (Ast.Binary (op, a, b)))
              (oneofl Ast.[ Add; Sub; Mul; Div; Mod; Eq; Neq; Lt; Le; Gt; Ge ])
              (pair sub sub);
            map2 (fun a b -> Ast.mk_expr (Ast.And (a, b))) sub sub;
            map2 (fun a b -> Ast.mk_expr (Ast.Or (a, b))) sub sub;
            map (fun a -> Ast.mk_expr (Ast.Unary (Ast.Neg, a))) sub;
            map (fun a -> Ast.mk_expr (Ast.Unary (Ast.Not, a))) sub;
            map2 (fun a f -> Ast.mk_expr (Ast.Field (a, f))) sub gen_ident;
            map2 (fun a i -> Ast.mk_expr (Ast.Index (a, i))) sub sub;
            map3 (fun a m args -> Ast.call a m args) sub gen_ident (list_size (0 -- 2) sub);
            map2 (fun m args -> Ast.mk_expr (Ast.Super_call (m, args))) gen_ident
              (list_size (0 -- 2) sub);
            map2 (fun f args -> Ast.fn_call f args) gen_ident (list_size (0 -- 2) sub);
            map2 (fun c args -> Ast.mk_expr (Ast.New (c, args))) gen_cls
              (list_size (0 -- 2) sub);
            map (fun elems -> Ast.mk_expr (Ast.Array_lit elems)) (list_size (0 -- 3) sub) ])

let gen_lvalue =
  let open QCheck2.Gen in
  oneof
    [ map (fun x -> Ast.Lvar x) gen_ident;
      map2 (fun e f -> Ast.Lfield (e, f)) gen_expr gen_ident;
      map2 (fun e i -> Ast.Lindex (e, i)) gen_expr gen_expr ]

let gen_stmt =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      let block_of g = list_size (0 -- 2) g in
      let leaf =
        oneof
          [ map2 (fun x e -> Ast.mk_stmt (Ast.Var_decl (x, e))) gen_ident gen_expr;
            map2 (fun l e -> Ast.mk_stmt (Ast.Assign (l, e))) gen_lvalue gen_expr;
            map (fun e -> Ast.mk_stmt (Ast.Expr_stmt e)) gen_expr;
            map (fun e -> Ast.mk_stmt (Ast.Return (Some e))) gen_expr;
            return (Ast.mk_stmt (Ast.Return None));
            map (fun e -> Ast.mk_stmt (Ast.Throw e)) gen_expr;
            return (Ast.mk_stmt Ast.Break);
            return (Ast.mk_stmt Ast.Continue) ]
      in
      if n <= 0 then leaf
      else
        let sub = block_of (self (n / 3)) in
        oneof
          [ leaf;
            map3 (fun c t f -> Ast.mk_stmt (Ast.If (c, t, f))) gen_expr sub sub;
            map2 (fun c b -> Ast.mk_stmt (Ast.While (c, b))) gen_expr sub;
            map3
              (fun init cond b ->
                Ast.mk_stmt (Ast.For (init, cond, None, b)))
              (option (map2 (fun x e -> Ast.mk_stmt (Ast.Var_decl (x, e))) gen_ident gen_expr))
              (option gen_expr) sub;
            map3
              (fun b c fin ->
                Ast.mk_stmt
                  (Ast.Try
                     ( b,
                       [ { Ast.cc_class = "Exception"; cc_var = c; cc_body = [] } ],
                       fin )))
              sub gen_ident (option sub);
            map (fun b -> Ast.mk_stmt (Ast.Block b)) sub ])

let gen_program =
  let open QCheck2.Gen in
  let gen_method =
    map3
      (fun name params body ->
        { Ast.m_name = name;
          m_params = params;
          m_throws = [];
          m_body = body;
          m_pos = Ast.dummy_pos })
      gen_ident
      (map (List.sort_uniq compare) (list_size (0 -- 3) gen_ident))
      (list_size (0 -- 3) gen_stmt)
  in
  let gen_class =
    map3
      (fun name fields methods ->
        Ast.Class_decl
          { Ast.c_name = name;
            c_super = None;
            c_fields = fields;
            c_methods = methods;
            c_pos = Ast.dummy_pos })
      gen_cls
      (map (List.sort_uniq compare) (list_size (0 -- 3) gen_ident))
      (list_size (0 -- 2) gen_method)
  in
  let gen_func =
    map3
      (fun name params body ->
        Ast.Func_decl
          { Ast.f_name = name;
            f_params = params;
            f_body = body;
            f_pos = Ast.dummy_pos })
      gen_ident
      (map (List.sort_uniq compare) (list_size (0 -- 3) gen_ident))
      (list_size (0 -- 4) gen_stmt)
  in
  QCheck2.Gen.(list_size (1 -- 3) (oneof [ gen_class; gen_func ]))

let prop_roundtrip =
  QCheck2.Test.make ~name:"parse (pretty p) = p" ~count:300
    ~print:(fun p -> Pretty.program_to_string p)
    gen_program
    (fun program ->
      let printed = Pretty.program_to_string program in
      match parse_program printed with
      | reparsed -> Ast.equal_program program reparsed
      | exception (Parser.Parse_error (msg, pos)) ->
        QCheck2.Test.fail_reportf "parse error: %s at %a@.%s" msg Ast.pp_pos pos printed)

let prop_expr_roundtrip =
  QCheck2.Test.make ~name:"parse (pretty e) = e" ~count:500
    ~print:(fun e -> Pretty.expr_to_string e)
    gen_expr
    (fun e ->
      let printed = Pretty.expr_to_string e in
      match parse_expr printed with
      | reparsed -> Ast.strip_expr reparsed = Ast.strip_expr e
      | exception (Parser.Parse_error (msg, pos)) ->
        QCheck2.Test.fail_reportf "parse error: %s at %a@.%s" msg Ast.pp_pos pos printed)

let suite =
  [ Alcotest.test_case "precedence" `Quick test_precedence;
    Alcotest.test_case "postfix chains" `Quick test_postfix_chains;
    Alcotest.test_case "statements" `Quick test_statements;
    Alcotest.test_case "class declarations" `Quick test_class_decl;
    Alcotest.test_case "parse errors" `Quick test_errors;
    QCheck_alcotest.to_alcotest prop_expr_roundtrip;
    QCheck_alcotest.to_alcotest prop_roundtrip ]
