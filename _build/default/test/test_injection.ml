(* Unit tests of the injection engine itself: point counting, snapshot
   scope, filter semantics, and the reflective hooks. *)

open Failatom_core
open Failatom_runtime

let parse = Failatom_minilang.Minilang.parse

let src =
  {|
class Pair {
  field a;
  field b;
  method init() { this.a = 0; this.b = null; return this; }
  method setA(v) { this.a = v; return null; }
  method noteWrite() { return this.a; }
  // mutates ONLY the argument before an injectable call: non-atomic
  // iff snapshots cover reference arguments
  method setOther(v, other) throws IllegalArgumentException {
    other.a = v;
    this.noteWrite();
    return null;
  }
  method fragile() throws IllegalStateException {
    throw new IllegalStateException("always");
  }
  // read-only proxy: exceptions pass through it without state change
  method proxyRead(other) throws IllegalStateException {
    return other.fragile();
  }
}
function main() {
  var p = new Pair();
  var q = new Pair();
  p.setA(1);
  p.setOther(2, q);
  try { p.proxyRead(q); } catch (IllegalStateException e) { }
  println(p.a + "/" + q.a);
  return 0;
}
|}

let make_state ?(config = Config.default) ~threshold () =
  let program = parse src in
  let analyzer = Analyzer.analyze config program in
  (program, Injection.make_state config analyzer ~threshold)

(* Listing 1: one point per injectable exception type per call. *)
let test_point_counting () =
  let program, state = make_state ~threshold:max_int () in
  let vm = Failatom_minilang.Compile.program program in
  Injection.attach state vm;
  ignore (Failatom_minilang.Compile.run_main vm);
  (* init x2 (2 pts each), setA (2), setOther (3: declared + generics),
     noteWrite (2), proxyRead (3), fragile (3) *)
  Alcotest.(check int) "points counted" (4 + 2 + 3 + 2 + 3 + 3) state.Injection.point;
  Alcotest.(check bool) "nothing injected" true (state.Injection.injected = None)

let test_injection_fires_once () =
  let program, state = make_state ~threshold:3 () in
  let vm = Failatom_minilang.Compile.program program in
  Injection.attach state vm;
  (match Failatom_minilang.Compile.run_main vm with
   | _ -> ()
   | exception Vm.Mini_raise _ -> ());
  match state.Injection.injected with
  | Some (site, exn_class) ->
    Alcotest.(check string) "site" "Pair.init" (Method_id.to_string site);
    (* threshold 3 = first point of the second init: its first
       injectable exception *)
    Alcotest.(check string) "exception class" "NullPointerException" exn_class
  | None -> Alcotest.fail "expected an injection"

(* Snapshot scope: with snapshot_args=false, mutations to reference
   arguments are invisible, so setBoth appears atomic. *)
let detect_with ~snapshot_args =
  let config = { Config.default with Config.snapshot_args } in
  let d = Detect.run ~config (parse src) in
  Classify.classify d

let test_snapshot_args_on () =
  let c = detect_with ~snapshot_args:true in
  Alcotest.(check bool) "setOther non-atomic (arg mutated)" true
    (Classify.verdict c (Method_id.make "Pair" "setOther")
     = Some Classify.Pure_non_atomic)

let test_snapshot_args_off () =
  let c = detect_with ~snapshot_args:false in
  Alcotest.(check bool) "setOther atomic when args not covered" true
    (Classify.verdict c (Method_id.make "Pair" "setOther") = Some Classify.Atomic)

(* The filter records atomic marks too (Listing 1 line 13-14). *)
let test_atomic_marks_recorded () =
  let d = Detect.run (parse src) in
  let atomic_marks =
    List.concat_map
      (fun (r : Marks.run_record) ->
        List.filter (fun (m : Marks.mark) -> m.Marks.atomic) r.Marks.marks)
      d.Detect.runs
  in
  Alcotest.(check bool) "atomic marks exist" true (atomic_marks <> [])

(* Hooks reject malformed arguments loudly. *)
let test_hook_misuse () =
  let program, state = make_state ~threshold:max_int () in
  let vm = Failatom_minilang.Compile.program program in
  Injection.register_hooks state vm;
  let hook name =
    match Vm.find_hook vm name with Some f -> f | None -> Alcotest.failf "missing %s" name
  in
  (try
     ignore (hook "__inject" vm [ Value.Int 3 ]);
     Alcotest.fail "expected rejection"
   with Invalid_argument _ -> ());
  (try
     ignore (hook "__mark" vm [ Value.Null ]);
     Alcotest.fail "expected rejection"
   with Invalid_argument _ -> ())

(* Snapshot tokens are single-use. *)
let test_snapshot_tokens () =
  let program, state = make_state ~threshold:max_int () in
  let vm = Failatom_minilang.Compile.program program in
  Injection.register_hooks state vm;
  let hook name = Option.get (Vm.find_hook vm name) in
  let recv = Value.Ref (Heap.alloc_object vm.Vm.heap ~cls:"Pair" [ ("a", Value.Int 0); ("b", Value.Null) ]) in
  let args = Value.Ref (Heap.alloc_array vm.Vm.heap [||]) in
  let token = hook "__snapshot" vm [ recv; args ] in
  Alcotest.(check bool) "token is an int" true
    (match token with Value.Int _ -> true | _ -> false);
  ignore (hook "__drop" vm [ token ]);
  (try
     ignore
       (hook "__mark" vm
          [ Value.Str "Pair"; Value.Str "x"; token; recv; args; Value.Null ]);
     Alcotest.fail "dropped token must not be reusable"
   with Invalid_argument _ -> ())

let suite =
  [ Alcotest.test_case "point counting" `Quick test_point_counting;
    Alcotest.test_case "injection fires once" `Quick test_injection_fires_once;
    Alcotest.test_case "snapshot covers args" `Quick test_snapshot_args_on;
    Alcotest.test_case "snapshot without args" `Quick test_snapshot_args_off;
    Alcotest.test_case "atomic marks recorded" `Quick test_atomic_marks_recorded;
    Alcotest.test_case "hook misuse rejected" `Quick test_hook_misuse;
    Alcotest.test_case "snapshot tokens single-use" `Quick test_snapshot_tokens ]
