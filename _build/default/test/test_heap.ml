(* Unit tests for the simulated heap and the value module. *)

open Failatom_runtime

let check = Alcotest.check

let test_value_basics () =
  check Alcotest.bool "truthy int" true (Value.truthy (Value.Int 2));
  check Alcotest.bool "falsy zero" false (Value.truthy (Value.Int 0));
  check Alcotest.bool "falsy null" false (Value.truthy Value.Null);
  check Alcotest.bool "truthy ref" true (Value.truthy (Value.Ref 3));
  check Alcotest.string "display string unquoted" "ab" (Value.to_display_string (Value.Str "ab"));
  check Alcotest.string "pp string quoted" "\"ab\"" (Value.to_string (Value.Str "ab"));
  check Alcotest.bool "ref identity equal" true (Value.equal (Value.Ref 1) (Value.Ref 1));
  check Alcotest.bool "ref identity differ" false (Value.equal (Value.Ref 1) (Value.Ref 2));
  check Alcotest.bool "cross type" false (Value.equal (Value.Int 0) Value.Null)

let test_alloc_get () =
  let heap = Heap.create () in
  let id = Heap.alloc_object heap ~cls:"C" [ ("x", Value.Int 1) ] in
  check Alcotest.(option string) "class_of" (Some "C") (Heap.class_of heap id);
  check Alcotest.bool "mem" true (Heap.mem heap id);
  check Alcotest.int "live count" 1 (Heap.live_count heap);
  check Alcotest.int "allocations" 1 (Heap.allocations heap);
  (match Heap.get_field heap id "x" with
   | Some (Value.Int 1) -> ()
   | _ -> Alcotest.fail "field x");
  Heap.set_field heap id "x" (Value.Str "s");
  (match Heap.get_field heap id "x" with
   | Some (Value.Str "s") -> ()
   | _ -> Alcotest.fail "field updated")

let test_dangling () =
  let heap = Heap.create () in
  let id = Heap.alloc_object heap ~cls:"C" [] in
  Heap.free heap id;
  check Alcotest.bool "freed" false (Heap.mem heap id);
  (try
     ignore (Heap.get heap id);
     Alcotest.fail "expected Dangling_reference"
   with Heap.Dangling_reference got -> check Alcotest.int "dangling id" id got)

let test_arrays () =
  let heap = Heap.create () in
  let id = Heap.alloc_array heap [| Value.Int 1; Value.Int 2 |] in
  check Alcotest.(option int) "array length" (Some 2) (Heap.array_length heap id);
  check Alcotest.bool "in bounds" true (Heap.get_elem heap id 1 = Some (Value.Int 2));
  check Alcotest.bool "out of bounds" true (Heap.get_elem heap id 2 = None);
  check Alcotest.bool "set in bounds" true (Heap.set_elem heap id 0 (Value.Int 9));
  check Alcotest.bool "set out of bounds" false (Heap.set_elem heap id 5 Value.Null);
  check Alcotest.bool "updated" true (Heap.get_elem heap id 0 = Some (Value.Int 9))

let test_write_barrier () =
  let heap = Heap.create () in
  let hits = ref [] in
  let obj = Heap.alloc_object heap ~cls:"C" [ ("x", Value.Int 0) ] in
  let arr = Heap.alloc_array heap [| Value.Null |] in
  heap.Heap.on_write <- Some (fun id -> hits := id :: !hits);
  Heap.set_field heap obj "x" (Value.Int 1);
  ignore (Heap.set_elem heap arr 0 (Value.Int 2));
  (* out-of-bounds writes must not fire the barrier *)
  ignore (Heap.set_elem heap arr 9 (Value.Int 3));
  check Alcotest.(list int) "barrier fired per mutation" [ arr; obj ] !hits;
  (* restore_payload bypasses the barrier *)
  Heap.restore_payload heap obj (Heap.copy_payload (Heap.get heap obj));
  check Alcotest.int "no barrier on restore" 2 (List.length !hits)

let test_copy_payload_detached () =
  let heap = Heap.create () in
  let id = Heap.alloc_object heap ~cls:"C" [ ("x", Value.Int 1) ] in
  let saved = Heap.copy_payload (Heap.get heap id) in
  Heap.set_field heap id "x" (Value.Int 2);
  Heap.restore_payload heap id saved;
  check Alcotest.bool "restored" true (Heap.get_field heap id "x" = Some (Value.Int 1))

let test_successors () =
  let heap = Heap.create () in
  let a = Heap.alloc_object heap ~cls:"C" [] in
  let b =
    Heap.alloc_object heap ~cls:"C"
      [ ("p", Value.Ref a); ("q", Value.Int 3); ("r", Value.Ref a) ]
  in
  let succ = List.sort compare (Heap.successors heap b) in
  check Alcotest.(list int) "object successors" [ a; a ] succ;
  let arr = Heap.alloc_array heap [| Value.Ref b; Value.Null |] in
  check Alcotest.(list int) "array successors" [ b ] (Heap.successors heap arr)

let suite =
  [ Alcotest.test_case "value basics" `Quick test_value_basics;
    Alcotest.test_case "alloc and get" `Quick test_alloc_get;
    Alcotest.test_case "dangling reference" `Quick test_dangling;
    Alcotest.test_case "arrays" `Quick test_arrays;
    Alcotest.test_case "write barrier" `Quick test_write_barrier;
    Alcotest.test_case "payload copy detached" `Quick test_copy_payload_detached;
    Alcotest.test_case "successors" `Quick test_successors ]
