(* Run-log persistence: save/load round trip and offline classification
   equivalence. *)

open Failatom_core
open Failatom_apps

let detection = lazy (Detect.run (Failatom_minilang.Minilang.parse Synthetic.source))

let test_roundtrip () =
  let d = Lazy.force detection in
  let log = Run_log.load (Run_log.save d) in
  Alcotest.(check string) "flavor" (Detect.flavor_name d.Detect.flavor) log.Run_log.flavor;
  Alcotest.(check bool) "transparent" d.Detect.transparent log.Run_log.transparent;
  Alcotest.(check int) "run count" (List.length d.Detect.runs)
    (List.length log.Run_log.runs);
  Alcotest.(check int) "call profile size"
    (Method_id.Map.cardinal d.Detect.profile.Profile.calls)
    (Method_id.Map.cardinal log.Run_log.calls);
  (* every run record survives field by field (output excepted) *)
  List.iter2
    (fun (a : Marks.run_record) (b : Marks.run_record) ->
      Alcotest.(check int) "injection point" a.Marks.injection_point
        b.Marks.injection_point;
      Alcotest.(check bool) "injected" true (a.Marks.injected = b.Marks.injected);
      Alcotest.(check (option string)) "escaped" a.Marks.escaped b.Marks.escaped;
      Alcotest.(check int) "ncalls" a.Marks.calls b.Marks.calls;
      Alcotest.(check bool) "marks" true (a.Marks.marks = b.Marks.marks))
    d.Detect.runs log.Run_log.runs

let same_classification a b =
  List.map
    (fun (r : Classify.method_report) ->
      (Method_id.to_string r.Classify.id, r.Classify.verdict, r.Classify.calls))
    (Classify.reports a)
  = List.map
      (fun (r : Classify.method_report) ->
        (Method_id.to_string r.Classify.id, r.Classify.verdict, r.Classify.calls))
      (Classify.reports b)

let test_offline_classification () =
  let d = Lazy.force detection in
  let online = Classify.classify d in
  let offline = Run_log.classify (Run_log.load (Run_log.save d)) in
  Alcotest.(check bool) "online = offline" true (same_classification online offline)

let test_offline_exception_free () =
  let d = Lazy.force detection in
  let annotations = [ Method_id.make "Unit" "validateThenMutate" ] in
  let online = Classify.classify ~exception_free:annotations d in
  let offline =
    Run_log.classify ~exception_free:annotations (Run_log.load (Run_log.save d))
  in
  Alcotest.(check bool) "annotated online = offline" true
    (same_classification online offline);
  Alcotest.(check int) "discarded runs preserved" online.Classify.discarded_runs
    offline.Classify.discarded_runs

let test_file_roundtrip () =
  let d = Lazy.force detection in
  let path = Filename.temp_file "failatom" ".faillog" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Run_log.save_file d path;
      let log = Run_log.load_file path in
      Alcotest.(check int) "runs from file" (List.length d.Detect.runs)
        (List.length log.Run_log.runs))

let expect_bad text =
  match Run_log.load text with
  | _ -> Alcotest.failf "expected Bad_log for %S" text
  | exception Run_log.Bad_log _ -> ()

let test_malformed () =
  expect_bad "faillog 99\n";
  expect_bad "mark A.m atomic 3\n" (* record outside run *);
  expect_bad "run 1\nrun 2\n" (* nested run *);
  expect_bad "run 1\n" (* unterminated *);
  expect_bad "run x\n";
  expect_bad "gibberish record\n";
  expect_bad "run 1\nmark A.m maybe 3\nendrun\n"

let suite =
  [ Alcotest.test_case "save/load round trip" `Quick test_roundtrip;
    Alcotest.test_case "offline classification" `Quick test_offline_classification;
    Alcotest.test_case "offline exception-free" `Quick test_offline_exception_free;
    Alcotest.test_case "file round trip" `Quick test_file_roundtrip;
    Alcotest.test_case "malformed logs rejected" `Quick test_malformed ]
