(* Lexer unit tests. *)

open Failatom_minilang

let tokens src = List.map fst (Lexer.tokenize src)

let token_pp = Fmt.of_to_string Lexer.token_name
let token_t = Alcotest.testable token_pp ( = )
let check_tokens msg expected src =
  Alcotest.check (Alcotest.list token_t) msg (expected @ [ Lexer.EOF ]) (tokens src)

let test_simple () =
  check_tokens "arith" [ Lexer.INT 1; Lexer.PLUS; Lexer.INT 2 ] "1 + 2";
  check_tokens "idents and keywords"
    [ Lexer.KW_VAR; Lexer.IDENT "x"; Lexer.EQ; Lexer.KW_NULL; Lexer.SEMI ]
    "var x = null;";
  check_tokens "comparison chain"
    [ Lexer.IDENT "a"; Lexer.LE; Lexer.IDENT "b"; Lexer.NEQ; Lexer.IDENT "c" ]
    "a <= b != c";
  check_tokens "logic"
    [ Lexer.BANG; Lexer.IDENT "a"; Lexer.ANDAND; Lexer.IDENT "b"; Lexer.OROR;
      Lexer.IDENT "c" ]
    "!a && b || c"

let test_strings () =
  check_tokens "plain" [ Lexer.STRING "hi" ] {|"hi"|};
  check_tokens "escapes" [ Lexer.STRING "a\nb\t\"\\" ] {|"a\nb\t\"\\"|};
  check_tokens "empty" [ Lexer.STRING "" ] {|""|}

let test_comments () =
  check_tokens "line comment" [ Lexer.INT 1; Lexer.INT 2 ] "1 // comment\n2";
  check_tokens "block comment" [ Lexer.INT 1; Lexer.INT 2 ] "1 /* mid */ 2";
  check_tokens "block comment multiline" [ Lexer.INT 1 ] "/* a\nb\nc */ 1"

let test_positions () =
  let toks = Lexer.tokenize "a\n  b" in
  match toks with
  | [ (Lexer.IDENT "a", p1); (Lexer.IDENT "b", p2); (Lexer.EOF, _) ] ->
    Alcotest.(check (pair int int)) "a at 1:1" (1, 1) (p1.Ast.line, p1.Ast.col);
    Alcotest.(check (pair int int)) "b at 2:3" (2, 3) (p2.Ast.line, p2.Ast.col)
  | _ -> Alcotest.fail "unexpected token stream"

let expect_error src =
  try
    ignore (Lexer.tokenize src);
    Alcotest.failf "expected lex error on %S" src
  with Lexer.Lex_error _ -> ()

let test_errors () =
  expect_error "\"unterminated";
  expect_error "/* unterminated";
  expect_error "a $ b";
  expect_error "a & b";
  expect_error "a | b";
  expect_error {|"bad \q escape"|}

let suite =
  [ Alcotest.test_case "simple tokens" `Quick test_simple;
    Alcotest.test_case "strings" `Quick test_strings;
    Alcotest.test_case "comments" `Quick test_comments;
    Alcotest.test_case "positions" `Quick test_positions;
    Alcotest.test_case "errors" `Quick test_errors ]
