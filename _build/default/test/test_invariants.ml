(* Cross-cutting invariants of the pipeline: determinism, accounting
   consistency, and agreement between independent views of the same
   detection result. *)

open Failatom_core
open Failatom_apps

let parse = Failatom_minilang.Minilang.parse

(* Detection is deterministic: two full runs of the pipeline over the
   same program produce identical run records. *)
let test_detection_deterministic () =
  let program = parse Synthetic.source in
  let d1 = Detect.run program in
  let d2 = Detect.run program in
  Alcotest.(check int) "same injections" d1.Detect.injections d2.Detect.injections;
  List.iter2
    (fun (a : Marks.run_record) (b : Marks.run_record) ->
      Alcotest.(check bool) "same injected site" true (a.Marks.injected = b.Marks.injected);
      Alcotest.(check bool) "same marks" true (a.Marks.marks = b.Marks.marks);
      Alcotest.(check string) "same output" a.Marks.output b.Marks.output)
    d1.Detect.runs d2.Detect.runs

(* The three count views agree with the reports they summarize. *)
let test_count_consistency () =
  let o = Harness.detect_app (Option.get (Registry.find "RBMap")) in
  let c = o.Harness.classification in
  let reports = Classify.reports c in
  Alcotest.(check int) "method counts total" (List.length reports)
    (Classify.total (Classify.method_counts c));
  Alcotest.(check int) "call counts total"
    (List.fold_left (fun acc (r : Classify.method_report) -> acc + r.Classify.calls) 0 reports)
    (Classify.total (Classify.call_counts c));
  Alcotest.(check int) "class counts total"
    (List.length c.Classify.class_verdicts)
    (Classify.total (Classify.class_counts c))

(* The profile's total equals the sum of per-method counts, and every
   classified method was actually called. *)
let test_profile_consistency () =
  let d = Detect.run (parse Synthetic.source) in
  let p = d.Detect.profile in
  Alcotest.(check int) "total calls"
    (List.fold_left (fun acc id -> acc + Profile.call_count p id) 0 (Profile.used_methods p))
    p.Profile.total_calls;
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (Method_id.to_string id ^ " has calls")
        true
        (Profile.call_count p id > 0))
    (Profile.used_methods p)

(* #Injections equals the number of injection points reached: arming
   point N for N <= total fires, N = total+1 does not (the probe). *)
let test_injection_count_is_point_count () =
  let program = parse Synthetic.source in
  let d = Detect.run program in
  let config = Config.default in
  let analyzer = Analyzer.analyze config program in
  let state = Injection.make_state config analyzer ~threshold:max_int in
  let vm = Failatom_minilang.Compile.program program in
  Injection.attach state vm;
  ignore (Failatom_minilang.Compile.run_main vm);
  Alcotest.(check int) "injections = total points" state.Injection.point
    d.Detect.injections

(* A verdict never changes between wrap-policy selections; only the
   target set does. *)
let test_policy_only_affects_targets () =
  let program = parse Synthetic.source in
  let d = Detect.run program in
  let c = Classify.classify d in
  let pure = Mask.targets { Config.default with Config.wrap_policy = Config.Wrap_pure } c in
  let all =
    Mask.targets { Config.default with Config.wrap_policy = Config.Wrap_all_non_atomic } c
  in
  Alcotest.(check bool) "pure subset of all" true (Method_id.Set.subset pure all);
  Alcotest.(check int) "difference is the conditional set"
    (List.length (Classify.conditional_methods c))
    (Method_id.Set.cardinal (Method_id.Set.diff all pure))

let suite =
  [ Alcotest.test_case "detection deterministic" `Quick test_detection_deterministic;
    Alcotest.test_case "count consistency" `Slow test_count_consistency;
    Alcotest.test_case "profile consistency" `Quick test_profile_consistency;
    Alcotest.test_case "injections = points" `Quick test_injection_count_is_point_count;
    Alcotest.test_case "policy affects only targets" `Quick test_policy_only_affects_targets ]
