test/test_invariants.ml: Alcotest Analyzer Classify Config Detect Failatom_apps Failatom_core Failatom_minilang Harness Injection List Marks Mask Method_id Option Profile Registry Synthetic
