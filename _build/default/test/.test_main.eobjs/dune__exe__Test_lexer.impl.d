test/test_lexer.ml: Alcotest Ast Failatom_minilang Fmt Lexer List
