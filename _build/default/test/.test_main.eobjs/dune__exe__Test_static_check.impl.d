test/test_static_check.ml: Alcotest Failatom_minilang Fmt List Minilang Static_check String
