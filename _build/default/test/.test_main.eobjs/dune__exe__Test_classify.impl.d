test/test_classify.ml: Alcotest Classify Detect Failatom_core Failatom_minilang List Method_id
