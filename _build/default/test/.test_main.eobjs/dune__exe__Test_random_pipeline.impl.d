test/test_random_pipeline.ml: Buffer Classify Config Detect Failatom_core Failatom_minilang List Mask Method_id Printf QCheck2 QCheck_alcotest Source_weaver String
