test/test_trace.ml: Alcotest Failatom_core Failatom_minilang Fmt Lazy List Method_id String Trace
