test/test_weaver.ml: Alcotest Analyzer Ast Compile Config Failatom_core Failatom_minilang Injection List Mask Method_id Minilang Parser Pretty Source_weaver Static_check String
