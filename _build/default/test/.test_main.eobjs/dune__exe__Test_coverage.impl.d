test/test_coverage.ml: Alcotest Coverage Detect Failatom_core Failatom_minilang Fmt Lazy List Method_id String
