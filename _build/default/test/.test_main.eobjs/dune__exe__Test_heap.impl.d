test/test_heap.ml: Alcotest Failatom_runtime Heap List Value
