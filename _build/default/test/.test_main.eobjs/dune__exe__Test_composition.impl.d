test/test_composition.ml: Alcotest Analyzer Classify Config Detect Failatom_core Failatom_minilang Failatom_runtime Injection List Marks Mask Method_id Source_weaver Vm
