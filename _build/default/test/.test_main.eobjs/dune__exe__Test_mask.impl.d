test/test_mask.ml: Alcotest Classify Config Detect Failatom_apps Failatom_core Failatom_minilang Failatom_runtime List Mask Method_id Option Registry Source_weaver String Synthetic
