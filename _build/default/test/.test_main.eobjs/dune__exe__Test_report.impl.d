test/test_report.ml: Alcotest Classify Failatom_apps Failatom_core Fmt Harness Lazy List Report String Synthetic
