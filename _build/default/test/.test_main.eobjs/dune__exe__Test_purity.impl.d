test/test_purity.ml: Alcotest Analyzer Classify Config Detect Failatom_apps Failatom_core Failatom_minilang Lazy List Method_id Option Purity
