test/test_detect.ml: Alcotest Analyzer Classify Config Detect Failatom_apps Failatom_core Failatom_minilang Fmt List Marks Method_id Synthetic
