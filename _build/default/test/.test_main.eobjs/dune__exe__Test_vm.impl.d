test/test_vm.ml: Alcotest Failatom_runtime Heap List Value Vm
