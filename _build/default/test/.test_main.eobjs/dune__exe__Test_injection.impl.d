test/test_injection.ml: Alcotest Analyzer Classify Config Detect Failatom_core Failatom_minilang Failatom_runtime Heap Injection List Marks Method_id Option Value Vm
