test/test_object_graph.ml: Alcotest Array Failatom_runtime Heap Object_graph QCheck2 QCheck_alcotest Random Value
