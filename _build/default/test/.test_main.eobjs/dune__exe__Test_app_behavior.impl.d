test/test_app_behavior.ml: Alcotest Array Buffer Failatom_apps Failatom_minilang Fun Hashtbl Int Lazy List Option Printf QCheck2 QCheck_alcotest Registry Set String
