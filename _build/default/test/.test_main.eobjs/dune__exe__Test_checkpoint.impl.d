test/test_checkpoint.ml: Alcotest Array Checkpoint Failatom_runtime Gc_heap Heap Object_graph Printf QCheck2 QCheck_alcotest Random Value Vm
