test/test_run_log.ml: Alcotest Classify Detect Failatom_apps Failatom_core Failatom_minilang Filename Fun Lazy List Marks Method_id Profile Run_log Synthetic Sys
