test/test_conformance.ml: Alcotest Failatom_minilang List Printf
