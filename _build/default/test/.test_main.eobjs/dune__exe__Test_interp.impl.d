test/test_interp.ml: Alcotest Compile Failatom_minilang Failatom_runtime Minilang Printf
