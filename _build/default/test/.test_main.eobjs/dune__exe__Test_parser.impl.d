test/test_parser.ml: Alcotest Ast Failatom_minilang List Parser Pretty QCheck2 QCheck_alcotest
