test/test_apps.ml: Alcotest Classify Detect Failatom_apps Failatom_core Harness List Method_id Option Registry String Synthetic
