examples/quickstart.mli:
