examples/weaving_demo.mli:
