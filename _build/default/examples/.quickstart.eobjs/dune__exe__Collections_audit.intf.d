examples/collections_audit.mli:
