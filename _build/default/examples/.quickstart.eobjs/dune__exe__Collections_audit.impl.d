examples/collections_audit.ml: Classify Detect Failatom_apps Failatom_core Failatom_minilang Fmt Harness List Mask Method_id Option Registry String
