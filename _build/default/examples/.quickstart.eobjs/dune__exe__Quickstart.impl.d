examples/quickstart.ml: Classify Config Detect Failatom_core Failatom_minilang Fmt Mask Method_id Report
