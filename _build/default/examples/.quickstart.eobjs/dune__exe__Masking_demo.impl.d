examples/masking_demo.ml: Config Failatom_core Failatom_minilang Failatom_runtime Fmt Mask Method_id Vm
