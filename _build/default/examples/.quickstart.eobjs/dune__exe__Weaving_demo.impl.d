examples/weaving_demo.ml: Config Failatom_core Failatom_minilang Fmt Mask Source_weaver String
