examples/masking_demo.mli:
