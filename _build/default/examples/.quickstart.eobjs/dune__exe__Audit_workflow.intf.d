examples/audit_workflow.mli:
