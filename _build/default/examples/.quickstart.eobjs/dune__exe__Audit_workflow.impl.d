examples/audit_workflow.ml: Classify Config Coverage Detect Failatom_apps Failatom_core Failatom_minilang Filename Fmt List Mask Method_id Option Registry Report Run_log Source_weaver Sys
