(* Auditing a collections library, as in the paper's §6.1 case study.

   Run with:  dune exec examples/collections_audit.exe

   The bundled LinkedList application is the analog of the Doug Lea
   collections LinkedList the paper stress-tested.  We (1) detect its
   failure non-atomic methods, (2) apply the "trivial fixes" variant
   and show the reduction, and (3) use an exception-free annotation to
   discharge a false positive, as the paper's web interface allows. *)

open Failatom_core
open Failatom_apps

let show_classification label (classification : Classify.t) =
  let counts = Classify.method_counts classification in
  Fmt.pr "@.%s@.%s@." label (String.make (String.length label) '-');
  Fmt.pr "methods: %d atomic, %d conditional, %d pure non-atomic@."
    counts.Classify.atomic counts.Classify.conditional counts.Classify.pure;
  List.iter
    (fun (r : Classify.method_report) ->
      if r.Classify.verdict <> Classify.Atomic then
        Fmt.pr "  %-32s %-24s %a@."
          (Method_id.to_string r.Classify.id)
          (Classify.verdict_name r.Classify.verdict)
          Fmt.(option (fun ppf d -> pf ppf "inconsistent at %s" d))
          r.Classify.sample_diff)
    (Classify.reports classification)

let () =
  (* 1. Audit the original LinkedList. *)
  let buggy = Harness.detect_app (Option.get (Registry.find "LinkedList")) in
  Fmt.pr "detection: %d injections over the LinkedList workload@."
    buggy.Harness.detection.Detect.injections;
  show_classification "original LinkedList" buggy.Harness.classification;

  (* 2. The paper's case study: trivial reorderings fix most of them. *)
  let fixed = Harness.detect_app Registry.linked_list_fixed in
  show_classification "after trivial fixes (paper 6.1)" fixed.Harness.classification;

  (* 3. The one remaining pure non-atomic method, addAllFirst, is only
     exposed by exceptions injected inside Cell.init and the list
     methods it calls.  A user who trusts allocation (the paper's
     "exception-free methods" annotation) can discharge the callee
     injections — and see what remains. *)
  let annotated =
    Classify.classify
      ~exception_free:
        [ Method_id.make "Cell" "init";
          Method_id.make "LinkedList" "addFirst";
          Method_id.make "AbstractContainer" "rangeCheck" ]
      fixed.Harness.detection
  in
  show_classification "with exception-free annotations" annotated;
  Fmt.pr "@.(discarded %d injection runs whose site was annotated exception-free)@."
    annotated.Classify.discarded_runs;

  (* 4. Whatever remains is what masking is for. *)
  let outcome =
    Mask.correct (Failatom_minilang.Minilang.parse Registry.linked_list_fixed.Registry.source)
  in
  Fmt.pr "@.masking wraps the irreducible remainder: %a@."
    Fmt.(list ~sep:comma Method_id.pp)
    (Method_id.Set.elements outcome.Mask.wrapped)
