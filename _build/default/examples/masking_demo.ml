(* Masking a component pipeline under fault injection.

   Run with:  dune exec examples/masking_demo.exe

   A Self*-style pipeline (the paper's C++ suite) whose batching
   component half-forwards its batch when an exception strikes.  We
   compare three executions under the SAME injected fault:
     1. uninstrumented: the fault corrupts the batch state;
     2. binary-flavor masking (load-time filters, no source access);
     3. source-flavor masking (the corrected program P_C).
   Both masked runs keep the component consistent, demonstrating the
   equivalence of the paper's two implementations. *)

open Failatom_runtime
open Failatom_core
module ML = Failatom_minilang

let source =
  {|
class Sink {
  field got;
  field count;
  field failAt;
  method init(failAt) {
    this.got = newArray(16);
    this.count = 0;
    this.failAt = failAt;
    return this;
  }
  // Simulates a transient downstream fault at a chosen event.
  method push(v) throws IllegalStateException {
    if (this.count == this.failAt) {
      throw new IllegalStateException("transient fault at " + this.count);
    }
    this.got[this.count] = v;
    this.count = this.count + 1;
    return null;
  }
}
class Batcher {
  field pending;
  field pendingCount;
  field sink;
  method init(sink) {
    this.pending = newArray(8);
    this.pendingCount = 0;
    this.sink = sink;
    return this;
  }
  method add(v) {
    this.pending[this.pendingCount] = v;
    this.pendingCount = this.pendingCount + 1;
    return null;
  }
  // Pure failure non-atomic: forwards one element at a time.
  method flush() throws IllegalStateException {
    var n = this.pendingCount;
    for (var i = 0; i < n; i = i + 1) {
      this.sink.push(this.pending[i]);
      this.pending[i] = null;
      this.pendingCount = this.pendingCount - 1;
    }
    return null;
  }
}
function main() {
  var sink = new Sink(2);
  var batcher = new Batcher(sink);
  batcher.add("a");
  batcher.add("b");
  batcher.add("c");
  batcher.add("d");
  try {
    batcher.flush();
  } catch (IllegalStateException e) {
    println("flush failed: " + e.message);
  }
  println("delivered: " + sink.count + ", still pending: " + batcher.pendingCount);
  return 0;
}
|}

let flush_id = Method_id.make "Batcher" "flush"
let targets = Method_id.Set.singleton flush_id

let () =
  let program = ML.Minilang.parse source in

  Fmt.pr "=== 1. uninstrumented run ===================================@.";
  Fmt.pr "%s" (ML.Minilang.run_string source);
  Fmt.pr "(two events delivered, two LOST: neither in the sink nor pending)@.@.";

  Fmt.pr "=== 2. load-time masking (binary flavor, no source access) ==@.";
  let vm = ML.Compile.program program in
  Mask.attach_masking Config.default ~targets vm;
  ignore (ML.Compile.run_main vm);
  Fmt.pr "%s" (Vm.output vm);
  Fmt.pr "(the batch was rolled back: all four events still pending —@.";
  Fmt.pr " the caller can retry flush() after the transient fault clears)@.@.";

  Fmt.pr "=== 3. source-weaving masking (corrected program P_C) =======@.";
  let corrected_vm = Mask.load_corrected Config.default ~targets program in
  ignore (ML.Compile.run_main corrected_vm);
  Fmt.pr "%s" (ML.Minilang.output corrected_vm);

  (* The sink itself was partially mutated *before* the rollback of the
     batcher?  No: the sink is reachable from the batcher's object
     graph (field [sink]), so the checkpoint covered it and the two
     delivered events were rolled back too.  Definition 1 at work. *)
  Fmt.pr "@.=== object-graph check ======================================@.";
  let vm2 = ML.Compile.program program in
  Mask.attach_masking Config.default ~targets vm2;
  ignore (ML.Compile.run_main vm2);
  Fmt.pr
    "the sink is part of the batcher's object graph, so rollback also@.";
  Fmt.pr "reverted the partially delivered events (sink.count printed above).@."
