(* Quickstart: the whole pipeline on ten lines of MiniLang.

   Run with:  dune exec examples/quickstart.exe

   A [Wallet] whose [spend] debits the balance before validating the
   amount — the classic failure non-atomic bug.  We detect it, mask it,
   and show that the corrected program no longer corrupts the balance
   when [spend] fails. *)

open Failatom_core
module ML = Failatom_minilang

let source =
  {|
class Wallet {
  field balance;
  method init(amount) { this.balance = amount; return this; }
  // BUG: the debit happens before the validation.
  method spend(amount) throws IllegalArgumentException {
    this.balance = this.balance - amount;
    if (amount < 0 || this.balance < 0) {
      throw new IllegalArgumentException("bad amount " + amount);
    }
    return this.balance;
  }
}
function main() {
  var w = new Wallet(100);
  w.spend(30);
  try { w.spend(500); } catch (IllegalArgumentException e) { }
  println("balance: " + w.balance);
  return 0;
}
|}

let () =
  let program = ML.Minilang.parse source in

  (* 1. The original program leaks the failed debit. *)
  Fmt.pr "--- original program ---------------------------------------@.";
  Fmt.pr "%s" (ML.Minilang.run_string source);
  Fmt.pr "(expected 70, but the failed spend(500) also debited!)@.@.";

  (* 2. Detection: inject exceptions everywhere, compare object graphs. *)
  let detection = Detect.run program in
  let classification = Classify.classify detection in
  Fmt.pr "--- detection phase ----------------------------------------@.";
  Fmt.pr "ran %d exception injections@." detection.Detect.injections;
  Report.pp_details Fmt.stdout classification;

  (* 3. Masking: wrap the pure non-atomic methods in atomicity wrappers. *)
  let outcome = Mask.correct program in
  Fmt.pr "@.--- masking phase ------------------------------------------@.";
  Fmt.pr "wrapped: %a@."
    Fmt.(list ~sep:comma Method_id.pp)
    (Method_id.Set.elements outcome.Mask.wrapped);

  (* 4. The corrected program P_C rolls the failed spend back. *)
  let vm = Mask.load_corrected Config.default ~targets:outcome.Mask.wrapped program in
  ignore (ML.Minilang.run vm);
  Fmt.pr "@.--- corrected program --------------------------------------@.";
  Fmt.pr "%s" (ML.Minilang.output vm);
  Fmt.pr "(the rollback restored the 70: failure atomicity holds)@."
