(* The full audit workflow, as a release-engineering pipeline would run
   it (paper §5.1 step 3: wrappers write log files; logs are processed
   offline).

   Run with:  dune exec examples/audit_workflow.exe

   1. detection runs once, against the RBMap workload, and writes a
      run log (the artifact a CI job would archive);
   2. injection coverage is audited — including methods the workload
      never called, whose error handling remains untested;
   3. classification happens OFFLINE from the log file, including an
      exception-free re-classification, without re-running anything;
   4. the verdicts drive the masking phase and a verification
      re-detection proves the corrected program failure atomic. *)

open Failatom_core
open Failatom_apps

let () =
  let app = Option.get (Registry.find "RBMap") in
  let program = Failatom_minilang.Minilang.parse app.Registry.source in

  (* 1. online detection + archived log *)
  let detection = Detect.run ~flavor:Detect.Load_time_filters program in
  let log_path = Filename.temp_file "rbmap" ".faillog" in
  Run_log.save_file detection log_path;
  Fmt.pr "detection: %d injection runs; log archived at %s@."
    detection.Detect.injections log_path;

  (* 2. coverage audit *)
  let coverage = Coverage.of_detection detection in
  Fmt.pr "@.--- injection coverage --------------------------------------@.";
  Fmt.pr "%d/%d used methods had every injectable exception exercised@."
    coverage.Coverage.fully_covered
    (List.length coverage.Coverage.methods);
  (match coverage.Coverage.unused with
   | [] -> Fmt.pr "every defined method was driven by the workload@."
   | unused ->
     Fmt.pr "WARNING: %d method(s) never called (their handling is untested):@."
       (List.length unused);
     List.iter (fun id -> Fmt.pr "  %s@." (Method_id.to_string id)) unused);

  (* 3. offline classification from the archived log *)
  let log = Run_log.load_file log_path in
  let offline = Run_log.classify log in
  Fmt.pr "@.--- offline classification (from the log file) ---------------@.";
  Report.pp_details Fmt.stdout offline;
  let annotated =
    Run_log.classify
      ~exception_free:[ Method_id.make "RBNode" "init" ]
      log
  in
  Fmt.pr "(with RBNode.init annotated exception-free: %d pure non-atomic)@."
    (List.length (Classify.pure_methods annotated));

  (* 4. mask and verify *)
  let outcome = Mask.correct ~flavor:Detect.Load_time_filters program in
  let d2 =
    Detect.run ~flavor:Detect.Load_time_filters
      ~prepare:(Mask.register_hooks Config.default)
      outcome.Mask.corrected
  in
  let residual =
    List.filter
      (fun (id : Method_id.t) -> Source_weaver.demangle id.Method_id.name = None)
      (Classify.non_atomic_methods (Classify.classify d2))
  in
  Fmt.pr "@.--- masking + verification ----------------------------------@.";
  Fmt.pr "wrapped %d method(s); verification re-ran %d injections; residual: %d@."
    (Method_id.Set.cardinal outcome.Mask.wrapped)
    d2.Detect.injections (List.length residual);
  Sys.remove log_path;
  if residual <> [] then exit 2
