(* Looking at the woven source.

   Run with:  dune exec examples/weaving_demo.exe

   The source weaver is the analog of the paper's AspectC++ path: it
   rewrites the program text itself.  This example prints the exception
   injector program P_I (Listing 1 wrappers) and the corrected program
   P_C (Listing 2 wrappers) for a small class, so the transformation
   can be read directly. *)

open Failatom_core
module ML = Failatom_minilang

let source =
  {|
class Counter {
  field n;
  method init() { this.n = 0; return this; }
  method bump(k) throws IllegalArgumentException {
    this.n = this.n + k;
    if (k < 0) { throw new IllegalArgumentException("negative"); }
    return this.n;
  }
}
function main() {
  var c = new Counter();
  c.bump(2);
  try { c.bump(-1); } catch (IllegalArgumentException e) { }
  println(c.n);
  return 0;
}
|}

let () =
  let program = ML.Minilang.parse source in

  Fmt.pr "=== original program =========================================@.";
  Fmt.pr "%s@." (ML.Pretty.program_to_string program);

  Fmt.pr "=== exception injector P_I (detection phase, Listing 1) ======@.";
  let injector = Source_weaver.weave_injection program in
  Fmt.pr "%s@." (ML.Pretty.program_to_string injector);

  Fmt.pr "=== corrected program P_C (masking phase, Listing 2) =========@.";
  let outcome = Mask.correct program in
  Fmt.pr "%s@." (ML.Pretty.program_to_string outcome.Mask.corrected);

  Fmt.pr "=== woven wrappers in action =================================@.";
  Fmt.pr "original run (bump(-1) leaks its increment):@.  %s@."
    (String.trim (ML.Minilang.run_string source));
  let vm = Mask.load_corrected Config.default ~targets:outcome.Mask.wrapped program in
  ignore (ML.Minilang.run vm);
  Fmt.pr "corrected run (bump(-1) rolled back):@.  %s@."
    (String.trim (ML.Minilang.output vm))
