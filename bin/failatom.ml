(* failatom — command-line front end for the detection/masking pipeline.

   Programs are given either as a path to a MiniLang source file or as
   [app:NAME] to use one of the bundled workload applications (the
   paper's Table 1 programs); [failatom apps] lists them.

   Exit codes are uniform across subcommands (see [exits] below):
   0 success, 1 detection found failure non-atomic methods, 2 usage
   error, 3 internal or server error.  Actions return the code; the
   final [Cmd.eval_value] match maps cmdliner's own parse errors to 2
   and uncaught exceptions to 3. *)

open Cmdliner
open Failatom_core
open Failatom_apps
module ML = Failatom_minilang
module Prod = Failatom_prod
module Server = Failatom_server.Server
module Client = Failatom_server.Client
module Protocol = Failatom_server.Protocol
module Store = Failatom_cluster.Store
module Persist = Failatom_cluster.Persist
module Shard_map = Failatom_cluster.Shard_map
module Supervisor = Failatom_cluster.Supervisor

(* ---------------- exit codes ---------------- *)

let exit_ok = 0
let exit_non_atomic = 1
let exit_usage = 2
let exit_internal = 3

let exits =
  [ Cmd.Exit.info exit_ok ~doc:"on success (and, for detection commands, no failure non-atomic method was found).";
    Cmd.Exit.info exit_non_atomic
      ~doc:"detection completed and found failure non-atomic methods (or $(b,mask --verify) found residual ones).";
    Cmd.Exit.info exit_usage
      ~doc:"usage error: bad command line, unreadable input, malformed program, log or journal.";
    Cmd.Exit.info exit_internal
      ~doc:"internal error: a detection run aborted, or a server/protocol failure." ]

(* ---------------- program loading ---------------- *)

let load_source spec =
  if String.length spec > 4 && String.sub spec 0 4 = "app:" then
    let name = String.sub spec 4 (String.length spec - 4) in
    match Registry.find name with
    | Some app -> Ok app.Registry.source
    | None -> Error (Printf.sprintf "unknown bundled application %S" name)
  else if Sys.file_exists spec then (
    let ic = open_in_bin spec in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Ok s)
  else Error (Printf.sprintf "no such file: %s" spec)

let parse_program source =
  match ML.Minilang.parse source with
  | program -> Ok program
  | exception ML.Lexer.Lex_error (msg, pos) ->
    Error (Fmt.str "lexical error at %a: %s" ML.Ast.pp_pos pos msg)
  | exception ML.Parser.Parse_error (msg, pos) ->
    Error (Fmt.str "syntax error at %a: %s" ML.Ast.pp_pos pos msg)
  | exception ML.Static_check.Check_error errors ->
    Error
      (Fmt.str "static errors:@.%a"
         Fmt.(list ~sep:cut ML.Static_check.pp_error)
         errors)

let with_program spec f =
  match Result.bind (load_source spec) parse_program with
  | Ok program -> f program
  | Error msg ->
    Fmt.epr "failatom: %s@." msg;
    exit_usage

(* ---------------- common options ---------------- *)

let program_arg =
  let doc = "MiniLang source file, or app:NAME for a bundled application." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)

let flavor_conv =
  Arg.enum [ ("source", Detect.Source_weaving); ("binary", Detect.Load_time_filters) ]

let flavor_doc =
  "Instrumentation flavor: $(b,source) rewrites the program text (the \
   paper's AspectC++/C++ path), $(b,binary) attaches load-time filters to \
   the compiled program (the paper's JWG/Java path)."

let flavor_arg =
  Arg.(
    value
    & opt flavor_conv Detect.Source_weaving
    & info [ "flavor" ] ~docv:"FLAVOR" ~doc:flavor_doc)

let details_arg =
  let doc = "Print the per-method verdicts, call counts and diff paths." in
  Arg.(value & flag & info [ "details" ] ~doc)

let engine_arg =
  let doc =
    "Execution engine for interpreted programs: $(b,bytecode) (flat bytecode \
     with superinstructions and monomorphic inline caches — the default) or \
     $(b,closures) (the original closure-tree evaluator, kept for \
     differential testing).  The engines are observably identical: same \
     output, step counts, marks and run logs."
  in
  let engine_conv =
    Arg.enum [ ("closures", ML.Compile.Closures); ("bytecode", ML.Compile.Bytecode) ]
  in
  Arg.(
    value
    & opt engine_conv !ML.Compile.default_engine
    & info [ "engine" ] ~docv:"ENGINE" ~doc)

(* The engine choice is a process-wide default ([Compile.image] honors
   it at every compilation, including re-weaves inside detection), set
   once before the action body runs. *)
let set_engine e = ML.Compile.default_engine := e

let method_list_conv =
  let parse s =
    match String.index_opt s '.' with
    | Some i ->
      Ok
        (Method_id.make (String.sub s 0 i) (String.sub s (i + 1) (String.length s - i - 1)))
    | None -> Error (`Msg (Printf.sprintf "%S is not of the form Class.method" s))
  in
  Arg.conv (parse, fun ppf id -> Fmt.string ppf (Method_id.to_string id))

let exception_free_arg =
  let doc =
    "Declare a method (Class.method) exception-free: injections whose site it \
     was are discarded before classification (repeatable)."
  in
  Arg.(value & opt_all method_list_conv [] & info [ "exception-free" ] ~docv:"M" ~doc)

let do_not_wrap_arg =
  let doc = "Exclude a method (Class.method) from masking (repeatable)." in
  Arg.(value & opt_all method_list_conv [] & info [ "do-not-wrap" ] ~docv:"M" ~doc)

let infer_arg =
  let doc =
    "Statically infer exception-free methods (the paper's future-work \
     analysis) and skip their injection points."
  in
  Arg.(value & flag & info [ "infer" ] ~doc)

let log_arg =
  let doc = "Write the detection run log (wrapper marks + call profile) to $(docv)." in
  Arg.(value & opt (some string) None & info [ "log" ] ~docv:"FILE" ~doc)

let wrap_all_arg =
  let doc =
    "Wrap every failure non-atomic method instead of only the pure ones."
  in
  Arg.(value & flag & info [ "wrap-all" ] ~doc)

let snapshot_mode_arg =
  let doc =
    "How detection wrappers capture the entry state: $(b,eager) \
     canonicalizes the receiver's full object graph at every wrapped call \
     (paper Listing 1), $(b,cow) opens a copy-on-write shadow and \
     reconstructs the entry form only on exceptional returns whose dirty \
     set reaches the snapshot — same marks, cost proportional to \
     mutations instead of graph size."
  in
  let mode_conv =
    Arg.enum [ ("eager", Config.Snapshot_eager); ("cow", Config.Snapshot_cow) ]
  in
  Arg.(
    value
    & opt mode_conv Config.default.Config.snapshot_mode
    & info [ "snapshot-mode" ] ~docv:"MODE" ~doc)

let run_timeout_arg =
  let doc =
    "Abort any single detection run after $(docv) seconds of wall-clock time \
     and record it as timed out instead of wedging a worker.  A timed-out \
     run never ends the detection loop."
  in
  Arg.(value & opt (some float) None & info [ "run-timeout" ] ~docv:"SECONDS" ~doc)

let prune_conv =
  Arg.enum
    [ ("off", Config.Prune_off);
      ("drop", Config.Prune_drop);
      ("coalesce", Config.Prune_coalesce) ]

(* The CLI defaults to coalesce — it is mark-for-mark identical to off,
   just cheaper — while Config.default stays off so library callers and
   the wire protocol only prune on request. *)
let prune_arg =
  let doc =
    "Static exception-flow pruning of the injection campaign: $(b,off) runs \
     every injection point; $(b,coalesce) (the default) runs one \
     representative per group of points every possibly-active handler is \
     blind to and synthesizes the rest — marks are bitwise-identical to \
     $(b,off); $(b,drop) additionally removes points whose exception the \
     method provably cannot raise, which renumbers the remaining points \
     (a semantic mode, like $(b,--infer))."
  in
  Arg.(value & opt prune_conv Config.Prune_coalesce & info [ "prune" ] ~docv:"MODE" ~doc)

let schedules_arg =
  let doc =
    "Schedule exploration for concurrent programs (those using $(b,spawn)): \
     $(docv) is either a count $(b,N) — the cooperative baseline plus \
     preemptive schedules slice:1 .. slice:N-1 — or $(b,pct-sweep) — the \
     cooperative baseline plus PCT priority schedules pct:D:S for depths \
     1-3 and seeds 1-3 — or an explicit comma-separated list of schedule \
     specs ($(b,coop), $(b,slice:<seed>), $(b,pct:<depth>:<seed>)).  Every \
     schedule is crossed with the whole injection-point axis.  Ignored for \
     sequential programs, which always run the single cooperative schedule."
  in
  Arg.(value & opt (some string) None & info [ "schedules" ] ~docv:"SPEC" ~doc)

(* Expands the --schedules argument into the Config.schedules spec list.
   The first spec is always coop: it is the baseline the per-schedule
   probes of the other schedules are compared around, and it keeps a
   concurrent campaign's first phase identical to the unexplored run. *)
let expand_schedules = function
  | None -> Ok Config.default.Config.schedules
  | Some "pct-sweep" ->
    Ok
      ("coop"
      :: List.concat_map
           (fun d -> List.map (fun s -> Printf.sprintf "pct:%d:%d" d s) [ 1; 2; 3 ])
           [ 1; 2; 3 ])
  | Some spec -> (
    match int_of_string_opt spec with
    | Some n when n >= 1 ->
      Ok ("coop" :: List.init (n - 1) (fun i -> Printf.sprintf "slice:%d" (i + 1)))
    | Some _ -> Error "--schedules count must be at least 1"
    | None ->
      let specs = String.split_on_char ',' spec in
      let bad =
        List.filter
          (fun s ->
            Option.is_none (Failatom_runtime.Sched.policy_of_string s))
          specs
      in
      if bad = [] then Ok specs
      else Error ("unknown schedule spec " ^ String.concat ", " bad))

let metrics_out_arg =
  let doc =
    "Enable the observability layer for this invocation and write the final \
     metrics snapshot (counters, gauges, span histograms) to $(docv) as \
     failatom.metrics/1 JSON.  Render it with $(b,failatom stats)."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

(* Runs [f] with metrics enabled iff [metrics_out] is set, then writes
   the snapshot.  The snapshot is taken in a Fun.protect finalizer so a
   failing detection still leaves its partial metrics on disk. *)
let with_metrics metrics_out f =
  match metrics_out with
  | None -> f ()
  | Some path ->
    Failatom_obs.Obs.set_enabled true;
    Fun.protect
      ~finally:(fun () ->
        let oc = open_out path in
        output_string oc (Failatom_obs.Obs.to_json (Failatom_obs.Obs.snapshot ()));
        output_char oc '\n';
        close_out oc;
        Fmt.epr "metrics written to %s@." path)
      f

let config_of ~exception_free ~do_not_wrap ~wrap_all ~snapshot_mode =
  { Config.default with
    Config.exception_free;
    do_not_wrap;
    snapshot_mode;
    wrap_policy = (if wrap_all then Config.Wrap_all_non_atomic else Config.Wrap_pure) }

let classification_code classification =
  if Classify.non_atomic_methods classification = [] then exit_ok else exit_non_atomic

(* ---------------- commands ---------------- *)

let run_cmd =
  let times_arg =
    let doc =
      "Run the program $(docv) times.  The program is compiled to an image \
       once; every repetition instantiates a fresh VM from it, so repeated \
       runs pay only the per-run cost (useful for timing the interpreter)."
    in
    Arg.(value & opt int 1 & info [ "times" ] ~docv:"N" ~doc)
  in
  let mode_arg =
    let doc =
      "$(b,normal) just runs the program; $(b,production) arms the atomicity \
       wrappers recorded in $(b,--plan) before running — always-on masking \
       without re-running detection — and reports the resilience scorecard."
    in
    Arg.(
      value
      & opt (Arg.enum [ ("normal", `Normal); ("production", `Production) ]) `Normal
      & info [ "mode" ] ~docv:"MODE" ~doc)
  in
  let plan_arg =
    let doc =
      "Detection plan (written by $(b,detect --emit-plan)) to arm wrappers \
       from.  Refused if its program digest does not match $(i,PROGRAM)."
    in
    Arg.(value & opt (some string) None & info [ "plan" ] ~docv:"FILE" ~doc)
  in
  let rollback_arg =
    let doc =
      "Rollback engine of the armed wrappers: $(b,checkpoint) copies the \
       protected graph at every call entry; $(b,cow) opens a copy-on-write \
       shadow (O(1) entry) and restores only the dirty objects of the \
       entry-time graph on the rare exceptional exit.  Both restore \
       bitwise-identical graphs."
    in
    Arg.(
      value
      & opt
          (Arg.enum
             [ ("checkpoint", Prod.Armed.Rb_checkpoint); ("cow", Prod.Armed.Rb_cow) ])
          Prod.Armed.Rb_checkpoint
      & info [ "wrapper-rollback" ] ~docv:"ENGINE" ~doc)
  in
  let perturb_rate_arg =
    let doc =
      "Canary perturbation: inject a declared exception into $(docv) out of \
       every 1000 calls to a wrapped method, validate that the rollback \
       reproduced the pre-call object graph, and transparently retry.  \
       0 (the default) disables the canary."
    in
    Arg.(value & opt int 0 & info [ "perturb-rate" ] ~docv:"PER-MILLE" ~doc)
  in
  let perturb_seed_arg =
    let doc = "Seed of the canary's deterministic draw sequence." in
    Arg.(value & opt int 1 & info [ "perturb-seed" ] ~docv:"SEED" ~doc)
  in
  let perturb_max_arg =
    let doc = "Stop injecting after $(docv) perturbations (default unlimited)." in
    Arg.(value & opt (some int) None & info [ "perturb-max" ] ~docv:"N" ~doc)
  in
  let perturb_point_arg =
    let doc =
      "Where the canary raises: $(b,entry) (before the body runs) or \
       $(b,exit) (after the body ran and mutated state — exercises a real \
       rollback; the retry re-executes the body, so output side effects of \
       perturbed calls occur twice)."
    in
    Arg.(
      value
      & opt
          (Arg.enum [ ("entry", Prod.Perturb.At_entry); ("exit", Prod.Perturb.At_exit) ])
          Prod.Perturb.At_exit
      & info [ "perturb-point" ] ~docv:"POINT" ~doc)
  in
  let resilience_out_arg =
    let doc =
      "Write the resilience scorecard (failatom.resilience/1) to $(docv).  \
       The write is atomic: a crash mid-run never leaves a torn file.  \
       Render it with $(b,failatom stats --resilience)."
    in
    Arg.(value & opt (some string) None & info [ "resilience-out" ] ~docv:"FILE" ~doc)
  in
  let run_normal program times =
    let image = ML.Compile.image program in
    let last_output = ref "" in
    for _ = 1 to times do
      let vm = ML.Compile.instantiate image in
      (match ML.Compile.run_main vm with
       | _ -> ()
       | exception Failatom_runtime.Vm.Mini_raise e ->
         Fmt.epr "uncaught %s: %s@." e.Failatom_runtime.Vm.exn_class
           e.Failatom_runtime.Vm.message);
      last_output := ML.Minilang.output vm
    done;
    print_string !last_output;
    exit_ok
  in
  let run_production program times ~plan_path ~rollback ~perturb ~resilience_out =
    match Prod.Plan.load_file plan_path with
    | Error msg ->
      Fmt.epr "failatom: %s: %s@." plan_path msg;
      exit_usage
    | Ok plan -> (
      match Prod.Produce.run ~rollback ?perturb ~times ~plan program with
      | Error msg ->
        (* stale plan: the program changed since detection *)
        Fmt.epr "failatom: %s@." msg;
        exit_usage
      | Ok { Prod.Produce.scorecard; runs } ->
        (match List.rev runs with
         | last :: _ -> print_string last.Prod.Produce.output
         | [] -> ());
        List.iter
          (fun (r : Prod.Produce.run_report) ->
            match r.Prod.Produce.escaped with
            | Some cls -> Fmt.epr "uncaught %s escaped a production run@." cls
            | None -> ())
          runs;
        Fmt.epr "%a" Prod.Scorecard.pp scorecard;
        (match resilience_out with
         | Some path ->
           Prod.Scorecard.save_file scorecard path;
           Fmt.epr "resilience scorecard written to %s@." path
         | None -> ());
        if Prod.Scorecard.failed scorecard > 0 then exit_non_atomic else exit_ok)
  in
  let action spec engine times mode plan rollback perturb_rate perturb_seed
      perturb_max perturb_point resilience_out metrics_out =
    set_engine engine;
    with_program spec (fun program ->
        if times < 1 then begin
          Fmt.epr "failatom: --times must be at least 1@.";
          exit_usage
        end
        else
          match (mode, plan) with
          | `Normal, Some _ ->
            Fmt.epr "failatom: --plan requires --mode production@.";
            exit_usage
          | `Normal, None -> run_normal program times
          | `Production, None ->
            Fmt.epr "failatom: --mode production requires --plan@.";
            exit_usage
          | `Production, Some plan_path ->
            let perturb =
              if perturb_rate > 0 then
                Some
                  { Prod.Produce.seed = perturb_seed;
                    rate_per_mille = perturb_rate;
                    max_fires = perturb_max;
                    point = perturb_point;
                    fallback_exceptions = [] }
              else None
            in
            with_metrics metrics_out (fun () ->
                run_production program times ~plan_path ~rollback ~perturb
                  ~resilience_out))
  in
  let doc =
    "Run a MiniLang program and print its output; with $(b,--mode \
     production) run it behind the armed atomicity wrappers of a detection \
     plan."
  in
  Cmd.v (Cmd.info "run" ~doc ~exits)
    Term.(
      const action $ program_arg $ engine_arg $ times_arg $ mode_arg $ plan_arg
      $ rollback_arg $ perturb_rate_arg $ perturb_seed_arg $ perturb_max_arg
      $ perturb_point_arg $ resilience_out_arg $ metrics_out_arg)

let csv_arg =
  let doc = "Write the per-method classification as CSV to $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let coverage_arg =
  let doc = "Print per-method injection coverage and never-called methods." in
  Arg.(value & flag & info [ "coverage" ] ~doc)

(* The human-readable classification block shared by detect/campaign. *)
let print_classification ~details classification =
  let counts = Classify.method_counts classification in
  Fmt.pr "discarded runs:   %d@." classification.Classify.discarded_runs;
  Fmt.pr "methods used:     %d (atomic %d, conditional %d, pure %d)@."
    (Classify.total counts) counts.Classify.atomic counts.Classify.conditional
    counts.Classify.pure;
  if details then Report.pp_details Fmt.stdout classification
  else
    List.iter
      (fun id ->
        let verdict = Option.get (Classify.verdict classification id) in
        Fmt.pr "  %-36s %s@." (Method_id.to_string id) (Classify.verdict_name verdict))
      (Classify.non_atomic_methods classification)

let write_csv csv classification =
  match csv with
  | Some path ->
    let oc = open_out path in
    output_string oc (Report.classification_to_csv classification);
    close_out oc;
    Fmt.epr "classification CSV written to %s@." path
  | None -> ()

let emit_plan_arg =
  let doc =
    "Write the detection plan (failatom.plan/1: program digest, configuration \
     fingerprint, wrap targets, per-method verdicts) to $(docv).  \
     $(b,failatom run --mode production --plan) arms wrappers from it \
     without re-running detection."
  in
  Arg.(value & opt (some string) None & info [ "emit-plan" ] ~docv:"FILE" ~doc)

let detect_cmd =
  let action spec engine flavor snapshot_mode prune schedules details
      exception_free infer log coverage csv metrics_out emit_plan =
    set_engine engine;
    match expand_schedules schedules with
    | Error msg ->
      Fmt.epr "failatom: %s@." msg;
      exit_usage
    | Ok schedules ->
    with_program spec (fun program ->
        let config =
          { Config.default with
            Config.infer_exception_free = infer;
            snapshot_mode;
            prune;
            schedules }
        in
        match
          with_metrics metrics_out (fun () -> Detect.run ~config ~flavor program)
        with
        | exception Detect.Detection_error msg ->
          Fmt.epr "failatom: %s@." msg;
          exit_internal
        | detection ->
          (match log with
           | Some path ->
             Run_log.save_file detection path;
             Fmt.epr "run log written to %s@." path
           | None -> ());
          let classification = Classify.classify ~exception_free detection in
          Fmt.pr "flavor:           %s@." (Detect.flavor_name flavor);
          Fmt.pr "injections:       %d@." detection.Detect.injections;
          Fmt.pr "transparent:      %b@." detection.Detect.transparent;
          print_classification ~details classification;
          if coverage then Coverage.pp Fmt.stdout (Coverage.of_detection detection);
          write_csv csv classification;
          (match emit_plan with
           | Some path ->
             (* exception_free is folded into the plan's config so the
                recorded fingerprint describes the classification the
                targets were chosen under *)
             let plan_config = { config with Config.exception_free } in
             let plan =
               Prod.Plan.build ~config:plan_config ~flavor ~program ~detection
                 ~classification
             in
             Prod.Plan.save_file plan path;
             Fmt.epr "detection plan written to %s@." path
           | None -> ());
          classification_code classification)
  in
  let doc =
    "Detection phase: inject exceptions at every injection point and classify \
     each method as atomic, conditional non-atomic or pure non-atomic."
  in
  Cmd.v
    (Cmd.info "detect" ~doc ~exits)
    Term.(
      const action $ program_arg $ engine_arg $ flavor_arg $ snapshot_mode_arg
      $ prune_arg $ schedules_arg $ details_arg $ exception_free_arg $ infer_arg
      $ log_arg $ coverage_arg $ csv_arg $ metrics_out_arg $ emit_plan_arg)

let campaign_cmd =
  let jobs_arg =
    let doc = "Number of worker domains (0 = one per available core, capped at 8)." in
    Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let journal_arg =
    let doc =
      "Append every completed run to $(docv) as it finishes (each record is \
       fsynced), so a killed campaign can be resumed with $(b,--resume)."
    in
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let resume_arg =
    let doc =
      "Adopt the runs already recorded in the $(b,--journal) file and execute \
       only the missing thresholds."
    in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let action spec engine flavor snapshot_mode prune schedules jobs journal resume
      run_timeout_s details exception_free log csv metrics_out =
    set_engine engine;
    match expand_schedules schedules with
    | Error msg ->
      Fmt.epr "failatom: %s@." msg;
      exit_usage
    | Ok schedules ->
    with_program spec (fun program ->
        if resume && journal = None then begin
          Fmt.epr "failatom: --resume requires --journal@.";
          exit_usage
        end
        else begin
          let jobs =
            if jobs <= 0 then Failatom_campaign.Campaign.default_jobs () else jobs
          in
          let report = Failatom_campaign.Progress.reporter Fmt.stderr in
          let config =
            { Config.default with Config.snapshot_mode; prune; schedules }
          in
          match
            with_metrics metrics_out (fun () ->
                Failatom_campaign.Campaign.run ~config ~flavor ?run_timeout_s ~jobs
                  ?journal ~resume ~report program)
          with
          | exception Failatom_campaign.Campaign.Campaign_error msg ->
            Fmt.epr "failatom: %s@." msg;
            exit_usage
          | exception Detect.Detection_error msg ->
            Fmt.epr "failatom: %s@." msg;
            exit_internal
          | detection, summary ->
            (match log with
             | Some path ->
               Run_log.save_file detection path;
               Fmt.epr "run log written to %s@." path
             | None -> ());
            let classification = Classify.classify ~exception_free detection in
            Fmt.pr "flavor:           %s@." (Detect.flavor_name flavor);
            Fmt.pr "workers:          %d@." summary.Failatom_campaign.Progress.workers;
            Fmt.pr "injections:       %d@." detection.Detect.injections;
            Fmt.pr "transparent:      %b@." detection.Detect.transparent;
            print_classification ~details classification;
            write_csv csv classification;
            classification_code classification
        end)
  in
  let doc =
    "Detection phase as a parallel, resumable campaign: injection-threshold \
     runs are scheduled speculatively across worker domains, journaled to \
     disk, and merged into a classification identical to $(b,detect)'s."
  in
  Cmd.v
    (Cmd.info "campaign" ~doc ~exits)
    Term.(
      const action $ program_arg $ engine_arg $ flavor_arg $ snapshot_mode_arg
      $ prune_arg $ schedules_arg $ jobs_arg $ journal_arg $ resume_arg
      $ run_timeout_arg $ details_arg $ exception_free_arg $ log_arg $ csv_arg
      $ metrics_out_arg)

let weave_cmd =
  let action spec =
    with_program spec (fun program ->
        print_string
          (ML.Pretty.program_to_string (Source_weaver.weave_injection program));
        exit_ok)
  in
  let doc = "Print the exception injector program P_I (woven source)." in
  Cmd.v (Cmd.info "weave" ~doc ~exits) Term.(const action $ program_arg)

let mask_cmd =
  let action spec engine flavor snapshot_mode exception_free do_not_wrap wrap_all
      show_source verify =
    set_engine engine;
    with_program spec (fun program ->
        let config = config_of ~exception_free ~do_not_wrap ~wrap_all ~snapshot_mode in
        match Mask.correct ~config ~flavor program with
        | exception Detect.Detection_error msg ->
          Fmt.epr "failatom: %s@." msg;
          exit_internal
        | outcome ->
          Fmt.epr "wrapped %d method(s):@." (Method_id.Set.cardinal outcome.Mask.wrapped);
          Method_id.Set.iter
            (fun id -> Fmt.epr "  %s@." (Method_id.to_string id))
            outcome.Mask.wrapped;
          if show_source then
            print_string (ML.Pretty.program_to_string outcome.Mask.corrected);
          if verify then begin
            (* re-run detection on P_C: no original-name method may remain
               failure non-atomic *)
            let d2 =
              Detect.run ~config ~flavor
                ~prepare:(Mask.register_hooks config)
                outcome.Mask.corrected
            in
            let residual =
              List.filter
                (fun (id : Method_id.t) ->
                  Source_weaver.demangle id.Method_id.name = None)
                (Classify.non_atomic_methods (Classify.classify d2))
            in
            match residual with
            | [] ->
              Fmt.epr "verification: %d re-injections, no residual non-atomic method@."
                d2.Detect.injections;
              exit_ok
            | methods ->
              Fmt.epr "verification FAILED, residual non-atomic methods:@.";
              List.iter (fun id -> Fmt.epr "  %s@." (Method_id.to_string id)) methods;
              exit_non_atomic
          end
          else exit_ok)
  in
  let show_source_arg =
    let doc = "Print the corrected program P_C to stdout." in
    Arg.(value & flag & info [ "print-corrected" ] ~doc)
  in
  let verify_arg =
    let doc =
      "Re-run the detection phase on the corrected program and fail unless \
       every residual method is failure atomic."
    in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  let doc =
    "Full pipeline (Figure 1): detect failure non-atomic methods, then wrap \
     them in atomicity wrappers, producing the corrected program P_C."
  in
  Cmd.v (Cmd.info "mask" ~doc ~exits)
    Term.(
      const action $ program_arg $ engine_arg $ flavor_arg $ snapshot_mode_arg
      $ exception_free_arg $ do_not_wrap_arg $ wrap_all_arg $ show_source_arg
      $ verify_arg)

let classify_cmd =
  let log_file_arg =
    let doc = "A run log previously written by detect --log." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"LOG" ~doc)
  in
  let action path details exception_free =
    match Run_log.load_file path with
    | exception Run_log.Bad_log (msg, line) ->
      Fmt.epr "failatom: %s: line %d: %s@." path line msg;
      exit_usage
    | log when log.Run_log.runs = [] ->
      (* every real detection log has at least the probe run *)
      Fmt.epr "failatom: %s: no runs recorded (not a run log?)@." path;
      exit_usage
    | log ->
      let classification = Run_log.classify ~exception_free log in
      Fmt.pr "flavor:           %s@." log.Run_log.flavor;
      Fmt.pr "runs:             %d@." (List.length log.Run_log.runs);
      print_classification ~details classification;
      classification_code classification
  in
  let doc =
    "Offline classification from a run log (the paper's Step 3: wrapper log \
     files processed offline), without re-running any injections."
  in
  Cmd.v (Cmd.info "classify" ~doc ~exits)
    Term.(const action $ log_file_arg $ details_arg $ exception_free_arg)

let profile_cmd =
  let times_arg =
    let doc = "Run the program $(docv) times to accumulate counts." in
    Arg.(value & opt int 1 & info [ "times" ] ~docv:"N" ~doc)
  in
  let flame_arg =
    let doc =
      "Write the profile to $(docv) in folded-stack format (one \
       $(i,frame;frame value) line per stack — flamegraph.pl / speedscope \
       input).  Opcode lines carry dispatch counts under an $(b,interp) \
       root; span lines carry total nanoseconds per observability span."
    in
    Arg.(value & opt (some string) None & info [ "flame" ] ~docv:"FILE" ~doc)
  in
  let action spec times flame =
    (* per-opcode counts only exist in the bytecode engine *)
    set_engine ML.Compile.Bytecode;
    with_program spec (fun program ->
        let module Exec = Failatom_runtime.Exec in
        let module Obs = Failatom_obs.Obs in
        if times < 1 then begin
          Fmt.epr "failatom: --times must be at least 1@.";
          exit_usage
        end
        else begin
          Obs.set_enabled true;
          Exec.reset_profile ();
          Exec.profiling := true;
          let image = Obs.span "compile.image" (fun () -> ML.Compile.image program) in
          for _ = 1 to times do
            let vm = ML.Compile.instantiate image in
            Obs.span "vm.run" (fun () ->
                match ML.Compile.run_main vm with
                | _ -> ()
                | exception Failatom_runtime.Vm.Mini_raise e ->
                  Fmt.epr "uncaught %s: %s@." e.Failatom_runtime.Vm.exn_class
                    e.Failatom_runtime.Vm.message)
          done;
          Exec.profiling := false;
          let total = Array.fold_left ( + ) 0 Exec.op_counts in
          Fmt.pr "dispatches:       %d (%d run(s))@." total times;
          let ranked =
            List.sort
              (fun (_, a) (_, b) -> compare b a)
              (List.init Exec.n_ops (fun i ->
                   (Exec.op_names.(i), Exec.op_counts.(i))))
          in
          List.iteri
            (fun rank (name, count) ->
              if rank < 20 && count > 0 then
                Fmt.pr "  %-12s %9d  %5.1f%%@." name count
                  (100.0 *. float_of_int count /. float_of_int (max 1 total)))
            ranked;
          (match flame with
           | Some path ->
             let oc = open_out path in
             output_string oc (Exec.folded_profile (Obs.snapshot ()));
             close_out oc;
             Fmt.epr "folded profile written to %s@." path
           | None -> ());
          exit_ok
        end)
  in
  let doc =
    "Run a program under the bytecode engine with opcode profiling and print \
     the hottest instructions; $(b,--flame) also writes a folded-stack file \
     combining per-opcode dispatch counts with per-phase span timings."
  in
  Cmd.v (Cmd.info "profile" ~doc ~exits)
    Term.(const action $ program_arg $ times_arg $ flame_arg)

let trace_cmd =
  let action spec =
    with_program spec (fun program ->
        let trace, output, escaped = Trace.run_traced program in
        Trace.pp Fmt.stdout trace;
        Fmt.pr "--- output ---@.%s" output;
        (match escaped with
         | Some exn_class -> Fmt.pr "--- escaped: %s ---@." exn_class
         | None -> ());
        exit_ok)
  in
  let doc = "Run a program under call tracing and print the dynamic call tree." in
  Cmd.v (Cmd.info "trace" ~doc ~exits) Term.(const action $ program_arg)

(* ---------------- the daemon and its clients ---------------- *)

let socket_arg =
  let doc = "Path of the daemon's Unix-domain socket." in
  Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let workers_arg =
  let doc = "Executor threads running submitted jobs concurrently." in
  Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc)

let max_queue_arg =
  let doc = "Reject submissions once $(docv) jobs are queued (admission control)." in
  Arg.(value & opt int 64 & info [ "max-queue" ] ~docv:"N" ~doc)

let job_timeout_arg =
  let doc =
    "Per-job wall-clock deadline: a job still running after $(docv) seconds \
     is aborted and reported as timed out."
  in
  Arg.(value & opt (some float) None & info [ "job-timeout" ] ~docv:"SECONDS" ~doc)

let store_arg =
  let doc =
    "Directory of the persistent content-addressed cache tier: finished \
     results and compiled-image metadata spill there keyed by program digest \
     and configuration fingerprint, survive restarts, and are shared by every \
     daemon pointed at the same directory."
  in
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)

let store_max_bytes_arg =
  let doc =
    "Evict least-recently-used store entries once the tier exceeds $(docv) \
     bytes on disk."
  in
  Arg.(
    value
    & opt int (256 * 1024 * 1024)
    & info [ "store-max-bytes" ] ~docv:"BYTES" ~doc)

let open_store_cache ~dir ~max_bytes =
  (* recording is normally enabled by Server.start; turn it on early so
     the store-open gauge and prewarm counters are not dropped *)
  Failatom_obs.Obs.set_enabled true;
  let store = Store.open_ ~dir ~max_bytes in
  let cache = Persist.cache store in
  let warmed = Persist.prewarm store cache in
  if warmed > 0 then
    Fmt.epr "failatom: prewarmed %d image(s) from %s@." warmed dir;
  cache

let serve_cmd =
  let action socket workers max_queue job_timeout_s run_timeout_s store
      store_max_bytes =
    match
      Fmt.epr "failatom: serving on %s (%d worker(s))@." socket workers;
      let cache =
        Option.map
          (fun dir -> open_store_cache ~dir ~max_bytes:store_max_bytes)
          store
      in
      Server.run ?cache
        { (Server.default_config ~socket_path:socket) with
          Server.workers;
          max_queue;
          job_timeout_s;
          run_timeout_s }
    with
    | () ->
      Fmt.epr "failatom: server drained, exiting@.";
      exit_ok
    | exception Unix.Unix_error (e, _, _) ->
      Fmt.epr "failatom: cannot serve on %s: %s@." socket (Unix.error_message e);
      exit_internal
  in
  let doc =
    "Serve detection as a long-running daemon over a Unix-domain socket \
     (protocol failatom.rpc/1, newline-delimited JSON).  Compiled program \
     images and finished results are cached content-addressed, so \
     resubmitting a known job is answered without re-running anything; with \
     $(b,--store) the caches also persist to disk across restarts.  \
     SIGTERM/SIGINT or the $(b,shutdown) subcommand drain gracefully."
  in
  Cmd.v (Cmd.info "serve" ~doc ~exits)
    Term.(
      const action $ socket_arg $ workers_arg $ max_queue_arg $ job_timeout_arg
      $ run_timeout_arg $ store_arg $ store_max_bytes_arg)

let cluster_cmd =
  let shards_arg =
    let doc = "Number of shard daemons to spawn." in
    Arg.(value & opt int 2 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let steal_arg =
    let doc =
      "Steal a job to the idlest live shard once its digest-selected home \
       shard has $(docv) more jobs in flight than that shard."
    in
    Arg.(value & opt int 4 & info [ "steal-threshold" ] ~docv:"N" ~doc)
  in
  let action socket shards workers max_queue job_timeout_s run_timeout_s store
      store_max_bytes steal_threshold =
    let config =
      { (Supervisor.default_config ~base_socket:socket ~exe:Sys.executable_name) with
        Supervisor.shards;
        workers;
        max_queue;
        job_timeout_s;
        run_timeout_s;
        store_dir = store;
        store_max_bytes;
        steal_threshold;
        on_event =
          (fun e -> Fmt.epr "failatom: cluster: %s@." (Supervisor.event_name e)) }
    in
    match Supervisor.run config with
    | () ->
      Fmt.epr "failatom: cluster drained, exiting@.";
      exit_ok
    | exception Unix.Unix_error (e, _, _) ->
      Fmt.epr "failatom: cannot run cluster on %s: %s@." socket
        (Unix.error_message e);
      exit_internal
  in
  let doc =
    "Run a sharded detection cluster: a router on $(i,PATH) in front of \
     $(b,--shards) supervised $(b,serve) daemons."
  in
  let man =
    [ `S Manpage.s_description;
      `P
        "Spawns $(b,--shards) $(b,failatom serve) daemons on private sockets \
         ($(i,PATH).shard0, $(i,PATH).shard1, ...) plus a router on the \
         public socket $(i,PATH).  Every client subcommand ($(b,submit), \
         $(b,watch), $(b,status), $(b,cancel), $(b,stats), $(b,shutdown)) \
         works against the router unchanged.";
      `P
        "Jobs are routed by program digest, so resubmissions of the same \
         program land on the shard whose caches are already warm.  When the \
         home shard is overloaded ($(b,--steal-threshold)) or dead, the job \
         is stolen to the idlest live shard.  A shard that exits is \
         respawned (with backoff for crash loops) and watched jobs it was \
         running are re-dispatched transparently.";
      `P
        "With $(b,--store) all shards share one persistent content-addressed \
         cache directory, LRU-bounded by $(b,--store-max-bytes): results and \
         compiled-image metadata computed by any shard — in any earlier \
         cluster run — are served without re-running.";
      `P
        "The fleet topology (router socket, shard sockets, shard pids) is \
         maintained in $(i,PATH).map so clients can fall back to direct \
         shard access while the router is down.  SIGTERM/SIGINT or \
         $(b,failatom shutdown) drain in order: the router first, then the \
         shards (SIGTERM, escalating to SIGKILL)." ]
  in
  Cmd.v (Cmd.info "cluster" ~doc ~man ~exits)
    Term.(
      const action $ socket_arg $ shards_arg $ workers_arg $ max_queue_arg
      $ job_timeout_arg $ run_timeout_arg $ store_arg $ store_max_bytes_arg
      $ steal_arg)

let job_pos_arg =
  let doc = "Job id as printed by $(b,submit)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"JOB" ~doc)

let print_event = function
  | Protocol.Ev_state s -> Fmt.epr "job: %s@." s
  | Protocol.Ev_tick { completed; needed; injections } ->
    let total = match needed with Some n -> string_of_int n | None -> "?" in
    Fmt.epr "job: %d/%s runs, %d injections@." completed total injections
  | Protocol.Ev_warning msg -> Fmt.epr "job: warning: %s@." msg
  | Protocol.Ev_done _ | Protocol.Ev_error _ | Protocol.Ev_cancelled
  | Protocol.Ev_timeout ->
    ()

let print_job_result (r : Protocol.job_result) =
  Fmt.pr "mode:             %s@." (Protocol.mode_name r.Protocol.r_mode);
  Fmt.pr "flavor:           %s@." r.Protocol.r_flavor;
  Fmt.pr "injections:       %d@." r.Protocol.r_injections;
  Fmt.pr "transparent:      %b@." r.Protocol.r_transparent;
  let c = r.Protocol.r_counts in
  Fmt.pr "methods used:     %d (atomic %d, conditional %d, pure %d)@."
    (c.Protocol.atomic + c.Protocol.conditional + c.Protocol.pure)
    c.Protocol.atomic c.Protocol.conditional c.Protocol.pure;
  List.iter (fun (m, v) -> Fmt.pr "  %-36s %s@." m v) r.Protocol.r_non_atomic;
  (match r.Protocol.r_summary with
   | Some s ->
     Fmt.pr "campaign:         %d executed, %d reused, %d discarded%s on %d worker(s) in %.2fs@."
       s.Protocol.executed s.Protocol.reused s.Protocol.discarded
       (if s.Protocol.synthesized > 0 then
          Printf.sprintf ", %d synthesized" s.Protocol.synthesized
        else "")
       s.Protocol.workers s.Protocol.wall_s
   | None -> ());
  if r.Protocol.r_wrapped <> [] then begin
    Fmt.pr "wrapped:@.";
    List.iter (fun m -> Fmt.pr "  %s@." m) r.Protocol.r_wrapped
  end;
  match r.Protocol.r_resilience with
  | None -> ()
  | Some text -> (
    match Prod.Scorecard.of_string text with
    | Ok scorecard -> Fmt.pr "%a" Prod.Scorecard.pp scorecard
    | Error _ -> Fmt.pr "resilience: %s@." text)

let job_result_code (r : Protocol.job_result) =
  match r.Protocol.r_mode with
  | Protocol.Produce ->
    (* production semantics: failure means a canary validation failed *)
    if r.Protocol.r_transparent then exit_ok else exit_non_atomic
  | Protocol.Detect | Protocol.Campaign | Protocol.Mask ->
    if r.Protocol.r_non_atomic = [] then exit_ok else exit_non_atomic

let finish_outcome ?(resilience_out = None) ~log ~corrected_out outcome =
  match outcome with
  | Client.Completed (result, cached) ->
    if cached then Fmt.epr "(result served from cache)@.";
    print_job_result result;
    (match log with
     | Some path ->
       let oc = open_out_bin path in
       output_string oc result.Protocol.r_log;
       close_out oc;
       Fmt.epr "run log written to %s@." path
     | None -> ());
    (match (corrected_out, result.Protocol.r_corrected) with
     | Some path, Some src ->
       let oc = open_out_bin path in
       output_string oc src;
       close_out oc;
       Fmt.epr "corrected program written to %s@." path
     | Some path, None ->
       Fmt.epr "failatom: no corrected program to write to %s (not a mask job)@." path
     | None, _ -> ());
    (match (resilience_out, result.Protocol.r_resilience) with
     | Some path, Some text ->
       let oc = open_out_bin path in
       output_string oc text;
       output_char oc '\n';
       close_out oc;
       Fmt.epr "resilience scorecard written to %s@." path
     | Some path, None ->
       Fmt.epr
         "failatom: no resilience scorecard to write to %s (not a produce job)@."
         path
     | None, _ -> ());
    job_result_code result
  | Client.Job_failed msg ->
    Fmt.epr "failatom: job failed: %s@." msg;
    exit_internal
  | Client.Job_cancelled ->
    Fmt.epr "failatom: job cancelled@.";
    exit_internal
  | Client.Job_timed_out ->
    Fmt.epr "failatom: job timed out@.";
    exit_internal

let with_client socket f =
  try f () with
  | Client.Error msg ->
    Fmt.epr "failatom: %s@." msg;
    exit_internal
  | Unix.Unix_error (e, _, _) ->
    Fmt.epr "failatom: %s: %s@." socket (Unix.error_message e);
    exit_internal

let connect_retries_arg =
  let doc =
    "Retry a refused or missing socket up to $(docv) times with capped \
     exponential backoff before giving up (useful while a daemon or cluster \
     is still starting)."
  in
  Arg.(value & opt int 0 & info [ "connect-retries" ] ~docv:"N" ~doc)

(* Degraded-mode cluster access: when the public socket is dead but the
   supervisor's [<socket>.map] survives, [pick] chooses a shard socket
   from the map (and optionally the shard-local job id to use there),
   and the command runs against the shard directly. *)
let with_cluster_fallback ~retries ~socket ~pick f =
  try Client.with_conn ~retries ~socket_path:socket (fun conn -> f conn None)
  with (Client.Error _ | Unix.Unix_error _) as exn -> (
    match Option.bind (Shard_map.read_map ~base:socket) pick with
    | None -> raise exn
    | Some (shard_socket, local) ->
      Fmt.epr "failatom: router unreachable, falling back to shard socket %s@."
        shard_socket;
      Client.with_conn ~retries ~socket_path:shard_socket (fun conn ->
          f conn local))

(* The shard a job id belongs to, per the map file. *)
let pick_shard_of_job job map =
  match Shard_map.parse_job_id job with
  | None -> None
  | Some (shard, local) ->
    Option.map
      (fun e -> (e.Shard_map.e_socket, Some local))
      (List.nth_opt map.Shard_map.m_shards shard)

(* The home shard of a program spec, for submitting router-less. *)
let pick_home_of_program program map =
  let shards = List.length map.Shard_map.m_shards in
  if shards = 0 then None
  else
    let home =
      match Shard_map.digest_of_spec program with
      | Some digest -> Shard_map.shard_of_digest ~shards digest
      | None -> 0
    in
    Option.map
      (fun e -> (e.Shard_map.e_socket, None))
      (List.nth_opt map.Shard_map.m_shards home)

let submit_cmd =
  let mode_arg =
    let doc =
      "What to run: $(b,detect) (single worker, result identical to the \
       $(b,detect) command), $(b,campaign) (parallel workers), $(b,mask) \
       (detection plus wrap targets and the corrected program), or \
       $(b,produce) (a production run armed from $(b,--plan); never served \
       from the result cache — timings are fresh every run)."
    in
    Arg.(
      value
      & opt
          (Arg.enum
             [ ("detect", Protocol.Detect);
               ("campaign", Protocol.Campaign);
               ("mask", Protocol.Mask);
               ("produce", Protocol.Produce) ])
          Protocol.Detect
      & info [ "mode" ] ~docv:"MODE" ~doc)
  in
  let plan_file_arg =
    let doc =
      "Detection plan file for a $(b,produce)-mode job; its text is shipped \
       in the request and validated against the program digest server-side."
    in
    Arg.(value & opt (some string) None & info [ "plan" ] ~docv:"FILE" ~doc)
  in
  let rollback_arg =
    let doc = "Rollback engine of the armed wrappers ($(b,produce) mode)." in
    Arg.(
      value
      & opt (some (Arg.enum [ ("checkpoint", "checkpoint"); ("cow", "cow") ])) None
      & info [ "wrapper-rollback" ] ~docv:"ENGINE" ~doc)
  in
  let perturb_rate_arg =
    let doc =
      "Canary perturbations per 1000 wrapped calls ($(b,produce) mode); \
       0 or absent disables the canary."
    in
    Arg.(value & opt (some int) None & info [ "perturb-rate" ] ~docv:"PER-MILLE" ~doc)
  in
  let perturb_seed_arg =
    let doc = "Seed of the canary's deterministic draw sequence." in
    Arg.(value & opt (some int) None & info [ "perturb-seed" ] ~docv:"SEED" ~doc)
  in
  let perturb_max_arg =
    let doc = "Stop injecting after $(docv) perturbations." in
    Arg.(value & opt (some int) None & info [ "perturb-max" ] ~docv:"N" ~doc)
  in
  let perturb_point_arg =
    let doc = "Where the canary raises: $(b,entry) or $(b,exit)." in
    Arg.(
      value
      & opt (some (Arg.enum [ ("entry", "entry"); ("exit", "exit") ])) None
      & info [ "perturb-point" ] ~docv:"POINT" ~doc)
  in
  let produce_times_arg =
    let doc = "Production runs per $(b,produce)-mode job (default 1)." in
    Arg.(value & opt (some int) None & info [ "times" ] ~docv:"N" ~doc)
  in
  let resilience_out_arg =
    let doc =
      "Write the resilience scorecard of a $(b,produce)-mode job to $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "resilience-out" ] ~docv:"FILE" ~doc)
  in
  let flavor_opt_arg =
    Arg.(
      value
      & opt (some flavor_conv) None
      & info [ "flavor" ] ~docv:"FLAVOR"
          ~doc:
            (flavor_doc
           ^ "  Defaults to the app's suite flavor, or $(b,source) for files."))
  in
  let jobs_arg =
    let doc = "Worker domains for a campaign-mode job (the server clamps)." in
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let detach_arg =
    let doc =
      "Print the job id and return immediately instead of watching the job; \
       follow it later with $(b,failatom watch)."
    in
    Arg.(value & flag & info [ "detach" ] ~doc)
  in
  let corrected_arg =
    let doc = "Write the corrected program of a mask-mode job to $(docv)." in
    Arg.(value & opt (some string) None & info [ "corrected" ] ~docv:"FILE" ~doc)
  in
  let snapshot_wire snapshot_mode = snapshot_mode in
  let action spec socket retries mode flavor snapshot_mode prune schedules infer
      wrap_all exception_free do_not_wrap jobs run_timeout_s detach log
      corrected_out plan_file rollback perturb_rate perturb_seed perturb_max
      perturb_point times resilience_out =
    (* Absent stays absent on the wire (an older server ignores the
       field); a given flag is expanded client-side so the server sees
       concrete specs. *)
    match
      (match schedules with None -> Ok [] | Some _ -> expand_schedules schedules)
    with
    | Error msg ->
      Fmt.epr "failatom: %s@." msg;
      exit_usage
    | Ok schedules ->
    let program =
      if String.length spec > 4 && String.sub spec 0 4 = "app:" then
        Ok (Protocol.App (String.sub spec 4 (String.length spec - 4)))
      else
        (* ship the file's source; the server parses and rejects *)
        Result.map (fun src -> Protocol.Inline src) (load_source spec)
    in
    match program with
    | Error msg ->
      Fmt.epr "failatom: %s@." msg;
      exit_usage
    | Ok program ->
    (* The plan is read client-side and shipped as text: the server may
       run on another machine (via the cluster) and never sees client
       paths. *)
    let plan =
      match (mode, plan_file) with
      | Protocol.Produce, None ->
        Error "--mode produce requires --plan"
      | (Protocol.Detect | Protocol.Campaign | Protocol.Mask), Some _ ->
        Error "--plan requires --mode produce"
      | _, None -> Ok None
      | Protocol.Produce, Some path -> (
        match In_channel.with_open_bin path In_channel.input_all with
        | text -> Ok (Some text)
        | exception Sys_error msg -> Error msg)
    in
    match plan with
    | Error msg ->
      Fmt.epr "failatom: %s@." msg;
      exit_usage
    | Ok plan ->
      let req =
        { (Protocol.default_request mode program) with
          Protocol.flavor;
          snapshot = snapshot_wire snapshot_mode;
          prune;
          schedules;
          infer;
          wrap_all;
          exception_free = List.map Method_id.to_string exception_free;
          do_not_wrap = List.map Method_id.to_string do_not_wrap;
          jobs;
          run_timeout_s;
          plan;
          rollback;
          perturb_rate;
          perturb_seed;
          perturb_max;
          perturb_point;
          times }
      in
      with_client socket (fun () ->
          with_cluster_fallback ~retries ~socket
            ~pick:(pick_home_of_program program)
            (fun conn _ ->
              let id, cached = Client.submit conn req in
              if detach then begin
                Fmt.pr "%s@." id;
                exit_ok
              end
              else begin
                Fmt.epr "job %s submitted%s@." id (if cached then " (cached)" else "");
                finish_outcome ~resilience_out ~log ~corrected_out
                  (Client.watch ~on_event:print_event conn id)
              end))
  in
  let doc =
    "Submit a job to a running $(b,failatom serve) daemon and (unless \
     $(b,--detach)) stream its progress and print the result — equivalent to \
     running $(b,detect)/$(b,campaign)/$(b,mask) locally, but sharing the \
     daemon's compiled-image and result caches."
  in
  Cmd.v (Cmd.info "submit" ~doc ~exits)
    Term.(
      const action $ program_arg $ socket_arg $ connect_retries_arg $ mode_arg
      $ flavor_opt_arg $ snapshot_mode_arg $ prune_arg $ schedules_arg
      $ infer_arg $ wrap_all_arg $ exception_free_arg $ do_not_wrap_arg
      $ jobs_arg $ run_timeout_arg $ detach_arg $ log_arg $ corrected_arg
      $ plan_file_arg $ rollback_arg $ perturb_rate_arg $ perturb_seed_arg
      $ perturb_max_arg $ perturb_point_arg $ produce_times_arg
      $ resilience_out_arg)

let status_cmd =
  let action job socket retries =
    with_client socket (fun () ->
        with_cluster_fallback ~retries ~socket ~pick:(pick_shard_of_job job)
          (fun conn local ->
            let job = Option.value local ~default:job in
            let s = Client.status conn job in
            Fmt.pr "job:    %s@." job;
            Fmt.pr "state:  %s@." s.Client.state;
            (match s.Client.error with
             | Some msg -> Fmt.pr "error:  %s@." msg
             | None -> ());
            match s.Client.result with
            | Some result ->
              if s.Client.cached then Fmt.pr "cached: true@.";
              print_job_result result;
              job_result_code result
            | None -> exit_ok))
  in
  let doc = "Query the state of a job on a running daemon." in
  Cmd.v (Cmd.info "status" ~doc ~exits)
    Term.(const action $ job_pos_arg $ socket_arg $ connect_retries_arg)

let watch_cmd =
  let action job socket retries log =
    with_client socket (fun () ->
        with_cluster_fallback ~retries ~socket ~pick:(pick_shard_of_job job)
          (fun conn local ->
            let job = Option.value local ~default:job in
            finish_outcome ~log ~corrected_out:None
              (Client.watch ~on_event:print_event conn job)))
  in
  let doc =
    "Stream a job's progress events until it finishes and print its result \
     (reattaches to jobs submitted with $(b,--detach))."
  in
  Cmd.v (Cmd.info "watch" ~doc ~exits)
    Term.(const action $ job_pos_arg $ socket_arg $ connect_retries_arg $ log_arg)

let cancel_cmd =
  let action job socket retries =
    with_client socket (fun () ->
        with_cluster_fallback ~retries ~socket ~pick:(pick_shard_of_job job)
          (fun conn local ->
            let job = Option.value local ~default:job in
            Client.cancel conn job;
            Fmt.epr "cancellation requested for %s@." job;
            exit_ok))
  in
  let doc =
    "Cancel a job: a queued job is dropped immediately, a running one stops \
     at its next scheduling point."
  in
  Cmd.v (Cmd.info "cancel" ~doc ~exits)
    Term.(const action $ job_pos_arg $ socket_arg $ connect_retries_arg)

let shutdown_cmd =
  let action socket retries =
    with_client socket (fun () ->
        try
          Client.with_conn ~retries ~socket_path:socket (fun conn ->
              Client.shutdown conn;
              Fmt.epr "shutdown requested@.";
              exit_ok)
        with (Client.Error _ | Unix.Unix_error _) as exn -> (
          (* router-less cluster: ask every shard in the map directly *)
          match Shard_map.read_map ~base:socket with
          | None -> raise exn
          | Some map ->
            List.iter
              (fun e ->
                try
                  Client.with_conn ~socket_path:e.Shard_map.e_socket
                    Client.shutdown
                with Client.Error _ | Unix.Unix_error _ | Sys_error _ -> ())
              map.Shard_map.m_shards;
            Fmt.epr "shutdown requested (shard by shard; router unreachable)@.";
            exit_ok))
  in
  let doc =
    "Ask a running daemon (or every shard of a cluster) to drain — queued \
     jobs cancelled, running jobs finish — and exit."
  in
  Cmd.v (Cmd.info "shutdown" ~doc ~exits)
    Term.(const action $ socket_arg $ connect_retries_arg)

let stats_cmd =
  let metrics_file_arg =
    let doc = "A metrics snapshot previously written by --metrics-out." in
    Arg.(value & pos 0 (some file) None & info [] ~docv:"METRICS" ~doc)
  in
  let socket_opt_arg =
    let doc = "Fetch the live metrics snapshot from a running daemon instead." in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let render text ~origin =
    match Failatom_obs.Obs.parse_json text with
    | snap ->
      Failatom_obs.Obs.pp_table Fmt.stdout snap;
      exit_ok
    | exception Failatom_obs.Obs.Parse_error msg ->
      Fmt.epr "failatom: %s: %s@." origin msg;
      exit_usage
  in
  let resilience_arg =
    let doc =
      "Treat the positional file as a resilience scorecard \
       (failatom.resilience/1, written by $(b,run --resilience-out)) and \
       render the per-method mask/canary table instead of a metrics snapshot."
    in
    Arg.(value & flag & info [ "resilience" ] ~doc)
  in
  let action path socket retries resilience =
    match (path, socket, resilience) with
    | _, Some _, true ->
      Fmt.epr "failatom: --resilience renders a file, not a live daemon@.";
      exit_usage
    | None, _, true ->
      Fmt.epr "failatom: stats --resilience needs a scorecard file@.";
      exit_usage
    | Some path, None, true -> (
      match Prod.Scorecard.load_file path with
      | Ok scorecard ->
        Fmt.pr "%a" Prod.Scorecard.pp scorecard;
        exit_ok
      | Error msg ->
        Fmt.epr "failatom: %s: %s@." path msg;
        exit_usage)
    | None, None, false ->
      Fmt.epr "failatom: stats needs a METRICS file or --socket@.";
      exit_usage
    | Some _, Some _, false ->
      Fmt.epr "failatom: stats takes either a METRICS file or --socket, not both@.";
      exit_usage
    | Some path, None, false ->
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      render s ~origin:path
    | None, Some socket, false ->
      with_client socket (fun () ->
          try
            Client.with_conn ~retries ~socket_path:socket (fun conn ->
                render (Client.stats conn) ~origin:socket)
          with (Client.Error _ | Unix.Unix_error _) as exn -> (
            (* router-less cluster: merge the shards' own snapshots *)
            match Shard_map.read_map ~base:socket with
            | None -> raise exn
            | Some map ->
              let snaps =
                List.filter_map
                  (fun e ->
                    try
                      Some
                        (Client.with_conn ~socket_path:e.Shard_map.e_socket
                           (fun conn ->
                             Failatom_obs.Obs.parse_json (Client.stats conn)))
                    with
                    | Client.Error _ | Unix.Unix_error _ | Sys_error _
                    | Failatom_obs.Obs.Parse_error _ ->
                      None)
                  map.Shard_map.m_shards
              in
              if snaps = [] then raise exn
              else begin
                Failatom_obs.Obs.pp_table Fmt.stdout
                  (Failatom_obs.Obs.merge snaps);
                exit_ok
              end))
  in
  let doc =
    "Render a metrics snapshot as a per-phase table: counters, gauges, and \
     span timings with count/total/mean/p50/p99/max — from a --metrics-out \
     file or live from a daemon ($(b,--socket); a cluster router answers \
     with its shards' metrics merged)."
  in
  Cmd.v (Cmd.info "stats" ~doc ~exits)
    Term.(
      const action $ metrics_file_arg $ socket_opt_arg $ connect_retries_arg
      $ resilience_arg)

let apps_cmd =
  let action () =
    Fmt.pr "%-14s %-5s %s@." "NAME" "SUITE" "DESCRIPTION";
    List.iter
      (fun (a : Registry.t) ->
        Fmt.pr "%-14s %-5s %s@." a.Registry.name
          (Registry.suite_name a.Registry.suite)
          a.Registry.description)
      Registry.catalog;
    exit_ok
  in
  let doc = "List the bundled workload applications (usable as app:NAME)." in
  Cmd.v (Cmd.info "apps" ~doc ~exits) Term.(const action $ const ())

let experiments_cmd =
  let action () =
    let outcomes = List.map Harness.detect_app Registry.all in
    let reports = List.map (fun o -> o.Harness.report) outcomes in
    Report.pp_table1 Fmt.stdout reports;
    let of_suite s =
      List.filter (fun (r : Report.app_result) -> String.equal r.Report.language s) reports
    in
    Report.pp_figure_methods Fmt.stdout ~title:"C++ apps: % of methods" (of_suite "C++");
    Report.pp_figure_calls Fmt.stdout ~title:"C++ apps: % of calls" (of_suite "C++");
    Report.pp_figure_methods Fmt.stdout ~title:"Java apps: % of methods" (of_suite "Java");
    Report.pp_figure_calls Fmt.stdout ~title:"Java apps: % of calls" (of_suite "Java");
    Report.pp_figure_classes Fmt.stdout ~title:"C++ apps: % of classes" (of_suite "C++");
    Report.pp_figure_classes Fmt.stdout ~title:"Java apps: % of classes" (of_suite "Java");
    exit_ok
  in
  let doc =
    "Run the detection sweep over all bundled applications and print Table 1 \
     and Figures 2-4 (use the bench executable for Figure 5)."
  in
  Cmd.v (Cmd.info "experiments" ~doc ~exits) Term.(const action $ const ())

let analyze_cmd =
  let action spec engine flavor =
    set_engine engine;
    with_program spec (fun program ->
        let img = ML.Compile.image program in
        let flow = Exnflow.analyze img program in
        let config = Config.default in
        let never = Exnflow.never_throws flow in
        Fmt.pr "exception universe:  %d classes@."
          (List.length (Exnflow.universe flow));
        Fmt.pr "methods analyzed:    %d (%d provably never throw)@."
          (List.length (Exnflow.methods flow))
          (Method_id.Set.cardinal never);
        Fmt.pr "@.may-raise sets (call-graph closed; H = possibly-active catch clauses):@.";
        List.iter
          (fun id ->
            let set = Exnflow.may_raise flow id in
            Fmt.pr "  %-36s H=%-3d %s@." (Method_id.to_string id)
              (Exnflow.handler_clause_count flow id)
              (if set = [] then "(never throws)" else String.concat ", " set))
          (Exnflow.methods flow);
        (* The dynamic census: one threshold-0 trace run per analyzer
           (no injection ever fires at threshold 0). *)
        let unfiltered = Analyzer.analyze config program in
        let compiled = Detect.compile ~plain:img flavor program in
        let prepare (_ : Failatom_runtime.Vm.t) = () in
        match
          Detect.run_once_ext ~trace:true compiled config unfiltered ~prepare
            ~threshold:0
        with
        | exception Detect.Detection_error msg ->
          Fmt.epr "failatom: %s@." msg;
          exit_internal
        | _, ex_off ->
          let plan = Prune.build flow ~entries:ex_off.Detect.entries in
          let p_off = plan.Prune.total_points in
          let filtered = Analyzer.analyze ~flow config program in
          let _, ex_drop =
            Detect.run_once_ext ~trace:true compiled config filtered ~prepare
              ~threshold:0
          in
          let p_drop =
            List.fold_left
              (fun acc (_, classes) -> acc + List.length classes)
              0 ex_drop.Detect.entries
          in
          Fmt.pr "@.pruning report (%s flavor):@." (Detect.flavor_name flavor);
          Fmt.pr "  injection points:      %d (%d runs unpruned, incl. probe)@."
            p_off (p_off + 1);
          Fmt.pr "  --prune drop:          %d points kept, %d dropped@." p_drop
            (p_off - p_drop);
          Fmt.pr
            "  --prune coalesce:      %d representative runs, %d synthesized \
             (%.1f%% of runs eliminated)@."
            (Prune.group_count plan)
            (Prune.coalesced_away plan)
            (100.
            *. float_of_int (Prune.coalesced_away plan)
            /. float_of_int (max 1 (p_off + 1)));
          exit_ok)
  in
  let doc =
    "Static exception-flow analysis report: per-method may-raise sets (closed \
     over the call graph), active-handler summaries, and what each \
     $(b,--prune) mode would save on this program's injection campaign."
  in
  Cmd.v (Cmd.info "analyze" ~doc ~exits)
    Term.(const action $ program_arg $ engine_arg $ flavor_arg)

let main_cmd =
  let doc =
    "Automatic detection and masking of non-atomic exception handling \
     (reproduction of Fetzer, Högstedt & Felber, DSN 2003)"
  in
  Cmd.group
    (Cmd.info "failatom" ~version:"1.0.0" ~doc ~exits)
    [ run_cmd; detect_cmd; campaign_cmd; analyze_cmd; classify_cmd; weave_cmd;
      mask_cmd; trace_cmd; profile_cmd; serve_cmd; cluster_cmd; submit_cmd;
      status_cmd; watch_cmd; cancel_cmd; shutdown_cmd; stats_cmd; apps_cmd;
      experiments_cmd ]

let () =
  match Cmd.eval_value main_cmd with
  | Ok (`Ok code) -> exit code
  | Ok (`Version | `Help) -> exit exit_ok
  | Error (`Parse | `Term) -> exit exit_usage
  | Error `Exn -> exit exit_internal
