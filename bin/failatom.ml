(* failatom — command-line front end for the detection/masking pipeline.

   Programs are given either as a path to a MiniLang source file or as
   [app:NAME] to use one of the bundled workload applications (the
   paper's Table 1 programs); [failatom apps] lists them. *)

open Cmdliner
open Failatom_core
open Failatom_apps
module ML = Failatom_minilang

(* ---------------- program loading ---------------- *)

let load_source spec =
  if String.length spec > 4 && String.sub spec 0 4 = "app:" then
    let name = String.sub spec 4 (String.length spec - 4) in
    match Registry.find name with
    | Some app -> Ok app.Registry.source
    | None -> Error (Printf.sprintf "unknown bundled application %S" name)
  else if Sys.file_exists spec then (
    let ic = open_in_bin spec in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Ok s)
  else Error (Printf.sprintf "no such file: %s" spec)

let parse_program source =
  match ML.Minilang.parse source with
  | program -> Ok program
  | exception ML.Lexer.Lex_error (msg, pos) ->
    Error (Fmt.str "lexical error at %a: %s" ML.Ast.pp_pos pos msg)
  | exception ML.Parser.Parse_error (msg, pos) ->
    Error (Fmt.str "syntax error at %a: %s" ML.Ast.pp_pos pos msg)
  | exception ML.Static_check.Check_error errors ->
    Error
      (Fmt.str "static errors:@.%a"
         Fmt.(list ~sep:cut ML.Static_check.pp_error)
         errors)

let with_program spec f =
  match Result.bind (load_source spec) parse_program with
  | Ok program -> f program
  | Error msg ->
    Fmt.epr "failatom: %s@." msg;
    exit 1

(* ---------------- common options ---------------- *)

let program_arg =
  let doc = "MiniLang source file, or app:NAME for a bundled application." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)

let flavor_arg =
  let doc =
    "Instrumentation flavor: $(b,source) rewrites the program text (the \
     paper's AspectC++/C++ path), $(b,binary) attaches load-time filters to \
     the compiled program (the paper's JWG/Java path)."
  in
  let flavor_conv =
    Arg.enum [ ("source", Detect.Source_weaving); ("binary", Detect.Load_time_filters) ]
  in
  Arg.(value & opt flavor_conv Detect.Source_weaving & info [ "flavor" ] ~docv:"FLAVOR" ~doc)

let details_arg =
  let doc = "Print the per-method verdicts, call counts and diff paths." in
  Arg.(value & flag & info [ "details" ] ~doc)

let method_list_conv =
  let parse s =
    match String.index_opt s '.' with
    | Some i ->
      Ok
        (Method_id.make (String.sub s 0 i) (String.sub s (i + 1) (String.length s - i - 1)))
    | None -> Error (`Msg (Printf.sprintf "%S is not of the form Class.method" s))
  in
  Arg.conv (parse, fun ppf id -> Fmt.string ppf (Method_id.to_string id))

let exception_free_arg =
  let doc =
    "Declare a method (Class.method) exception-free: injections whose site it \
     was are discarded before classification (repeatable)."
  in
  Arg.(value & opt_all method_list_conv [] & info [ "exception-free" ] ~docv:"M" ~doc)

let do_not_wrap_arg =
  let doc = "Exclude a method (Class.method) from masking (repeatable)." in
  Arg.(value & opt_all method_list_conv [] & info [ "do-not-wrap" ] ~docv:"M" ~doc)

let infer_arg =
  let doc =
    "Statically infer exception-free methods (the paper's future-work \
     analysis) and skip their injection points."
  in
  Arg.(value & flag & info [ "infer" ] ~doc)

let log_arg =
  let doc = "Write the detection run log (wrapper marks + call profile) to $(docv)." in
  Arg.(value & opt (some string) None & info [ "log" ] ~docv:"FILE" ~doc)

let wrap_all_arg =
  let doc =
    "Wrap every failure non-atomic method instead of only the pure ones."
  in
  Arg.(value & flag & info [ "wrap-all" ] ~doc)

let snapshot_mode_arg =
  let doc =
    "How detection wrappers capture the entry state: $(b,eager) \
     canonicalizes the receiver's full object graph at every wrapped call \
     (paper Listing 1), $(b,cow) opens a copy-on-write shadow and \
     reconstructs the entry form only on exceptional returns whose dirty \
     set reaches the snapshot — same marks, cost proportional to \
     mutations instead of graph size."
  in
  let mode_conv =
    Arg.enum [ ("eager", Config.Snapshot_eager); ("cow", Config.Snapshot_cow) ]
  in
  Arg.(
    value
    & opt mode_conv Config.default.Config.snapshot_mode
    & info [ "snapshot-mode" ] ~docv:"MODE" ~doc)

let metrics_out_arg =
  let doc =
    "Enable the observability layer for this invocation and write the final \
     metrics snapshot (counters, gauges, span histograms) to $(docv) as \
     failatom.metrics/1 JSON.  Render it with $(b,failatom stats)."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

(* Runs [f] with metrics enabled iff [metrics_out] is set, then writes
   the snapshot.  The snapshot is taken in a Fun.protect finalizer so a
   failing detection still leaves its partial metrics on disk. *)
let with_metrics metrics_out f =
  match metrics_out with
  | None -> f ()
  | Some path ->
    Failatom_obs.Obs.set_enabled true;
    Fun.protect
      ~finally:(fun () ->
        let oc = open_out path in
        output_string oc (Failatom_obs.Obs.to_json (Failatom_obs.Obs.snapshot ()));
        output_char oc '\n';
        close_out oc;
        Fmt.epr "metrics written to %s@." path)
      f

let config_of ~exception_free ~do_not_wrap ~wrap_all ~snapshot_mode =
  { Config.default with
    Config.exception_free;
    do_not_wrap;
    snapshot_mode;
    wrap_policy = (if wrap_all then Config.Wrap_all_non_atomic else Config.Wrap_pure) }

(* ---------------- commands ---------------- *)

let run_cmd =
  let times_arg =
    let doc =
      "Run the program $(docv) times.  The program is compiled to an image \
       once; every repetition instantiates a fresh VM from it, so repeated \
       runs pay only the per-run cost (useful for timing the interpreter)."
    in
    Arg.(value & opt int 1 & info [ "times" ] ~docv:"N" ~doc)
  in
  let action spec times =
    with_program spec (fun program ->
        if times < 1 then begin
          Fmt.epr "failatom: --times must be at least 1@.";
          exit 1
        end;
        let image = ML.Compile.image program in
        let last_output = ref "" in
        for _ = 1 to times do
          let vm = ML.Compile.instantiate image in
          (match ML.Compile.run_main vm with
           | _ -> ()
           | exception Failatom_runtime.Vm.Mini_raise e ->
             Fmt.epr "uncaught %s: %s@." e.Failatom_runtime.Vm.exn_class
               e.Failatom_runtime.Vm.message);
          last_output := ML.Minilang.output vm
        done;
        print_string !last_output)
  in
  let doc = "Run a MiniLang program and print its output." in
  Cmd.v (Cmd.info "run" ~doc) Term.(const action $ program_arg $ times_arg)

let csv_arg =
  let doc = "Write the per-method classification as CSV to $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let coverage_arg =
  let doc = "Print per-method injection coverage and never-called methods." in
  Arg.(value & flag & info [ "coverage" ] ~doc)

let detect_cmd =
  let action spec flavor snapshot_mode details exception_free infer log coverage csv
      metrics_out =
    with_program spec (fun program ->
        let config =
          { Config.default with Config.infer_exception_free = infer; snapshot_mode }
        in
        let detection =
          with_metrics metrics_out (fun () -> Detect.run ~config ~flavor program)
        in
        (match log with
         | Some path ->
           Run_log.save_file detection path;
           Fmt.epr "run log written to %s@." path
         | None -> ());
        let classification = Classify.classify ~exception_free detection in
        let counts = Classify.method_counts classification in
        Fmt.pr "flavor:           %s@." (Detect.flavor_name flavor);
        Fmt.pr "injections:       %d@." detection.Detect.injections;
        Fmt.pr "transparent:      %b@." detection.Detect.transparent;
        Fmt.pr "discarded runs:   %d@." classification.Classify.discarded_runs;
        Fmt.pr "methods used:     %d (atomic %d, conditional %d, pure %d)@."
          (Classify.total counts) counts.Classify.atomic counts.Classify.conditional
          counts.Classify.pure;
        if details then Report.pp_details Fmt.stdout classification
        else begin
          let non_atomic = Classify.non_atomic_methods classification in
          List.iter
            (fun id ->
              let verdict = Option.get (Classify.verdict classification id) in
              Fmt.pr "  %-36s %s@." (Method_id.to_string id)
                (Classify.verdict_name verdict))
            non_atomic
        end;
        if coverage then Coverage.pp Fmt.stdout (Coverage.of_detection detection);
        match csv with
        | Some path ->
          let oc = open_out path in
          output_string oc (Report.classification_to_csv classification);
          close_out oc;
          Fmt.epr "classification CSV written to %s@." path
        | None -> ())
  in
  let doc =
    "Detection phase: inject exceptions at every injection point and classify \
     each method as atomic, conditional non-atomic or pure non-atomic."
  in
  Cmd.v
    (Cmd.info "detect" ~doc)
    Term.(
      const action $ program_arg $ flavor_arg $ snapshot_mode_arg $ details_arg
      $ exception_free_arg $ infer_arg $ log_arg $ coverage_arg $ csv_arg
      $ metrics_out_arg)

let campaign_cmd =
  let jobs_arg =
    let doc = "Number of worker domains (0 = one per available core, capped at 8)." in
    Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let journal_arg =
    let doc =
      "Append every completed run to $(docv) as it finishes, so a killed \
       campaign can be resumed with $(b,--resume)."
    in
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let resume_arg =
    let doc =
      "Adopt the runs already recorded in the $(b,--journal) file and execute \
       only the missing thresholds."
    in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let action spec flavor snapshot_mode jobs journal resume details exception_free log csv
      metrics_out =
    with_program spec (fun program ->
        if resume && journal = None then begin
          Fmt.epr "failatom: --resume requires --journal@.";
          exit 1
        end;
        let jobs = if jobs <= 0 then Failatom_campaign.Campaign.default_jobs () else jobs in
        let report = Failatom_campaign.Progress.reporter Fmt.stderr in
        let config = { Config.default with Config.snapshot_mode } in
        match
          with_metrics metrics_out (fun () ->
              Failatom_campaign.Campaign.run ~config ~flavor ~jobs ?journal ~resume
                ~report program)
        with
        | exception Failatom_campaign.Campaign.Campaign_error msg ->
          Fmt.epr "failatom: %s@." msg;
          exit 1
        | detection, summary ->
          (match log with
           | Some path ->
             Run_log.save_file detection path;
             Fmt.epr "run log written to %s@." path
           | None -> ());
          let classification = Classify.classify ~exception_free detection in
          let counts = Classify.method_counts classification in
          Fmt.pr "flavor:           %s@." (Detect.flavor_name flavor);
          Fmt.pr "workers:          %d@." summary.Failatom_campaign.Progress.workers;
          Fmt.pr "injections:       %d@." detection.Detect.injections;
          Fmt.pr "transparent:      %b@." detection.Detect.transparent;
          Fmt.pr "discarded runs:   %d@." classification.Classify.discarded_runs;
          Fmt.pr "methods used:     %d (atomic %d, conditional %d, pure %d)@."
            (Classify.total counts) counts.Classify.atomic counts.Classify.conditional
            counts.Classify.pure;
          if details then Report.pp_details Fmt.stdout classification
          else
            List.iter
              (fun id ->
                let verdict = Option.get (Classify.verdict classification id) in
                Fmt.pr "  %-36s %s@." (Method_id.to_string id)
                  (Classify.verdict_name verdict))
              (Classify.non_atomic_methods classification);
          match csv with
          | Some path ->
            let oc = open_out path in
            output_string oc (Report.classification_to_csv classification);
            close_out oc;
            Fmt.epr "classification CSV written to %s@." path
          | None -> ())
  in
  let doc =
    "Detection phase as a parallel, resumable campaign: injection-threshold \
     runs are scheduled speculatively across worker domains, journaled to \
     disk, and merged into a classification identical to $(b,detect)'s."
  in
  Cmd.v
    (Cmd.info "campaign" ~doc)
    Term.(
      const action $ program_arg $ flavor_arg $ snapshot_mode_arg $ jobs_arg
      $ journal_arg $ resume_arg $ details_arg $ exception_free_arg $ log_arg $ csv_arg
      $ metrics_out_arg)

let weave_cmd =
  let action spec =
    with_program spec (fun program ->
        print_string
          (ML.Pretty.program_to_string (Source_weaver.weave_injection program)))
  in
  let doc = "Print the exception injector program P_I (woven source)." in
  Cmd.v (Cmd.info "weave" ~doc) Term.(const action $ program_arg)

let mask_cmd =
  let action spec flavor snapshot_mode exception_free do_not_wrap wrap_all show_source
      verify =
    with_program spec (fun program ->
        let config = config_of ~exception_free ~do_not_wrap ~wrap_all ~snapshot_mode in
        let outcome = Mask.correct ~config ~flavor program in
        Fmt.epr "wrapped %d method(s):@." (Method_id.Set.cardinal outcome.Mask.wrapped);
        Method_id.Set.iter
          (fun id -> Fmt.epr "  %s@." (Method_id.to_string id))
          outcome.Mask.wrapped;
        if show_source then
          print_string (ML.Pretty.program_to_string outcome.Mask.corrected);
        if verify then begin
          (* re-run detection on P_C: no original-name method may remain
             failure non-atomic *)
          let d2 =
            Detect.run ~config ~flavor
              ~prepare:(Mask.register_hooks config)
              outcome.Mask.corrected
          in
          let residual =
            List.filter
              (fun (id : Method_id.t) ->
                Source_weaver.demangle id.Method_id.name = None)
              (Classify.non_atomic_methods (Classify.classify d2))
          in
          match residual with
          | [] ->
            Fmt.epr "verification: %d re-injections, no residual non-atomic method@."
              d2.Detect.injections
          | methods ->
            Fmt.epr "verification FAILED, residual non-atomic methods:@.";
            List.iter (fun id -> Fmt.epr "  %s@." (Method_id.to_string id)) methods;
            exit 2
        end)
  in
  let show_source_arg =
    let doc = "Print the corrected program P_C to stdout." in
    Arg.(value & flag & info [ "print-corrected" ] ~doc)
  in
  let verify_arg =
    let doc =
      "Re-run the detection phase on the corrected program and fail unless \
       every residual method is failure atomic."
    in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  let doc =
    "Full pipeline (Figure 1): detect failure non-atomic methods, then wrap \
     them in atomicity wrappers, producing the corrected program P_C."
  in
  Cmd.v (Cmd.info "mask" ~doc)
    Term.(
      const action $ program_arg $ flavor_arg $ snapshot_mode_arg $ exception_free_arg
      $ do_not_wrap_arg $ wrap_all_arg $ show_source_arg $ verify_arg)

let classify_cmd =
  let log_file_arg =
    let doc = "A run log previously written by detect --log." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"LOG" ~doc)
  in
  let action path details exception_free =
    match Run_log.load_file path with
    | exception Run_log.Bad_log (msg, line) ->
      Fmt.epr "failatom: %s: line %d: %s@." path line msg;
      exit 1
    | log ->
      let classification = Run_log.classify ~exception_free log in
      let counts = Classify.method_counts classification in
      Fmt.pr "flavor:           %s@." log.Run_log.flavor;
      Fmt.pr "runs:             %d@." (List.length log.Run_log.runs);
      Fmt.pr "discarded runs:   %d@." classification.Classify.discarded_runs;
      Fmt.pr "methods used:     %d (atomic %d, conditional %d, pure %d)@."
        (Classify.total counts) counts.Classify.atomic counts.Classify.conditional
        counts.Classify.pure;
      if details then Report.pp_details Fmt.stdout classification
      else
        List.iter
          (fun id ->
            Fmt.pr "  %-36s %s@." (Method_id.to_string id)
              (Classify.verdict_name (Option.get (Classify.verdict classification id))))
          (Classify.non_atomic_methods classification)
  in
  let doc =
    "Offline classification from a run log (the paper's Step 3: wrapper log \
     files processed offline), without re-running any injections."
  in
  Cmd.v (Cmd.info "classify" ~doc)
    Term.(const action $ log_file_arg $ details_arg $ exception_free_arg)

let trace_cmd =
  let action spec =
    with_program spec (fun program ->
        let trace, output, escaped = Trace.run_traced program in
        Trace.pp Fmt.stdout trace;
        Fmt.pr "--- output ---@.%s" output;
        match escaped with
        | Some exn_class -> Fmt.pr "--- escaped: %s ---@." exn_class
        | None -> ())
  in
  let doc = "Run a program under call tracing and print the dynamic call tree." in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const action $ program_arg)

let stats_cmd =
  let metrics_file_arg =
    let doc = "A metrics snapshot previously written by --metrics-out." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"METRICS" ~doc)
  in
  let action path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    match Failatom_obs.Obs.parse_json s with
    | snap -> Failatom_obs.Obs.pp_table Fmt.stdout snap
    | exception Failatom_obs.Obs.Parse_error msg ->
      Fmt.epr "failatom: %s: %s@." path msg;
      exit 1
  in
  let doc =
    "Render a --metrics-out snapshot as a per-phase table: counters, gauges, \
     and span timings with count/total/mean/p50/p99/max."
  in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const action $ metrics_file_arg)

let apps_cmd =
  let action () =
    Fmt.pr "%-14s %-5s %s@." "NAME" "SUITE" "DESCRIPTION";
    List.iter
      (fun (a : Registry.t) ->
        Fmt.pr "%-14s %-5s %s@." a.Registry.name
          (Registry.suite_name a.Registry.suite)
          a.Registry.description)
      Registry.catalog
  in
  let doc = "List the bundled workload applications (usable as app:NAME)." in
  Cmd.v (Cmd.info "apps" ~doc) Term.(const action $ const ())

let experiments_cmd =
  let action () =
    let outcomes = List.map Harness.detect_app Registry.all in
    let reports = List.map (fun o -> o.Harness.report) outcomes in
    Report.pp_table1 Fmt.stdout reports;
    let of_suite s =
      List.filter (fun (r : Report.app_result) -> String.equal r.Report.language s) reports
    in
    Report.pp_figure_methods Fmt.stdout ~title:"C++ apps: % of methods" (of_suite "C++");
    Report.pp_figure_calls Fmt.stdout ~title:"C++ apps: % of calls" (of_suite "C++");
    Report.pp_figure_methods Fmt.stdout ~title:"Java apps: % of methods" (of_suite "Java");
    Report.pp_figure_calls Fmt.stdout ~title:"Java apps: % of calls" (of_suite "Java");
    Report.pp_figure_classes Fmt.stdout ~title:"C++ apps: % of classes" (of_suite "C++");
    Report.pp_figure_classes Fmt.stdout ~title:"Java apps: % of classes" (of_suite "Java")
  in
  let doc =
    "Run the detection sweep over all bundled applications and print Table 1 \
     and Figures 2-4 (use the bench executable for Figure 5)."
  in
  Cmd.v (Cmd.info "experiments" ~doc) Term.(const action $ const ())

let main_cmd =
  let doc =
    "Automatic detection and masking of non-atomic exception handling \
     (reproduction of Fetzer, Högstedt & Felber, DSN 2003)"
  in
  Cmd.group
    (Cmd.info "failatom" ~version:"1.0.0" ~doc)
    [ run_cmd; detect_cmd; campaign_cmd; classify_cmd; weave_cmd; mask_cmd; trace_cmd;
      stats_cmd; apps_cmd; experiments_cmd ]

let () = exit (Cmd.eval main_cmd)
